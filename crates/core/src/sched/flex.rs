//! Reservation-depth backfilling — the EASY ↔ conservative spectrum.
//!
//! EASY protects only the *head* of the queue with a reservation;
//! conservative protects *everyone*. The backfilling literature the paper
//! builds on (Section II-A; see also Srinivasan et al.'s
//! "Characterization of Backfilling Strategies", by the same group)
//! studies the spectrum in between: reserve the first `depth` queued
//! jobs, and let anything else backfill only if it would not delay any of
//! them. `depth = 1` behaves like EASY; a depth beyond the queue length
//! behaves like conservative backfilling.
//!
//! Included as a baseline substrate: it quantifies how much of NS's
//! short-job pain is a *reservation-policy* artifact versus something
//! only preemption can fix (`ablation_reservation_depth`).

use crate::policy::{Action, DecideCtx, Policy};
use crate::sched::planner::ReservationLadder;
use crate::sim::SimState;

/// Backfilling with reservations for the first `depth` queued jobs.
#[derive(Clone, Debug)]
pub struct FlexBackfill {
    depth: usize,
    /// Reusable reservation ladder (profile buffer persists across
    /// decides; rebuilt in place each call).
    ladder: ReservationLadder,
}

impl FlexBackfill {
    /// Reservations for the first `depth` waiting jobs (`depth >= 1`).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "at least the head job must be protected");
        FlexBackfill {
            depth,
            ladder: ReservationLadder::default(),
        }
    }
}

impl Policy for FlexBackfill {
    fn name(&self) -> String {
        format!("Flex (depth={})", self.depth)
    }

    // Stateless; the reservation ladder is rebuilt from the (empty) queue.
    fn quiescent_noop(&self) -> bool {
        true
    }

    fn decide(&mut self, state: &SimState, _ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
        let now = state.now();
        self.ladder.rebuild(state);
        let ladder = &mut self.ladder;
        for (i, &id) in state.queued().iter().enumerate() {
            let job = state.job(id);
            if i < self.depth {
                // Protected: gets (and re-derives, every decision) the
                // earliest reservation consistent with those ahead of it.
                if ladder.reserve(job) == now {
                    actions.push(Action::Start(id));
                }
            } else {
                // Unprotected: may start only where it provably delays no
                // reservation — i.e. its anchor against the current
                // profile is *now*.
                if ladder.try_backfill_now(job) {
                    actions.push(Action::Start(id));
                }
            }
        }
    }
}

#[cfg(test)]
impl crate::sim::SimResult {
    /// Mean wait over all outcomes (test helper).
    fn report_mean_wait(&self) -> f64 {
        self.outcomes.iter().map(|o| o.wait() as f64).sum::<f64>() / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::easy::Easy;
    use crate::sim::Simulator;
    use sps_workload::{Job, JobId};

    fn run(jobs: Vec<Job>, procs: u32, depth: usize) -> crate::sim::SimResult {
        Simulator::new(jobs, procs, Box::new(FlexBackfill::new(depth))).run()
    }

    /// The Fig. 1 / Fig. 2 contrast: EASY's extra-node rule admits a long
    /// narrow job that conservative-style protection (depth ≥ 3) rejects.
    fn contrast_trace() -> Vec<Job> {
        vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 9),
            Job::new(2, 2, 150, 150, 1),
        ]
    }

    #[test]
    fn depth_one_admits_like_easy() {
        // With only the head protected, j2 (1 proc, ends after the shadow)
        // is still rejected here because it would delay the 9-proc head —
        // but on the *extra-node* variant below it backfills. Align with
        // EASY on both traces.
        let easy = Simulator::new(contrast_trace(), 9, Box::<Easy>::default()).run();
        let flex = run(contrast_trace(), 9, 1);
        for id in 0..3u32 {
            let a = easy
                .outcomes
                .iter()
                .find(|o| o.id == JobId(id))
                .unwrap()
                .first_start;
            let b = flex
                .outcomes
                .iter()
                .find(|o| o.id == JobId(id))
                .unwrap()
                .first_start;
            assert_eq!(a, b, "job {id} start differs from EASY");
        }
    }

    #[test]
    fn extra_node_backfill_matches_easy_at_depth_one() {
        // 8-proc head reservation leaves one extra node: a long 1-proc job
        // may take it under EASY *and* under depth-1 flex (its anchor
        // against the head's reservation is `now`).
        let jobs = vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 8),
            Job::new(2, 2, 10_000, 10_000, 1),
        ];
        let flex = run(jobs, 9, 1);
        let j2 = flex.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(j2.first_start.secs(), 2);
    }

    #[test]
    fn deep_reservations_block_delaying_backfill() {
        // Depth 3 covers all queued jobs → conservative behaviour: j2 must
        // wait behind j1.
        let res = run(contrast_trace(), 9, 3);
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(j2.first_start.secs(), 200, "conservative-style protection");
    }

    #[test]
    fn no_starvation_at_any_depth() {
        let mut jobs = vec![Job::new(0, 0, 100, 100, 5), Job::new(1, 1, 100, 100, 9)];
        for i in 0..30 {
            jobs.push(Job::new(2 + i, 2 + i as i64, 100, 100, 2));
        }
        for depth in [1, 2, 8, 64] {
            let res = run(jobs.clone(), 9, depth);
            let wide = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
            assert_eq!(
                wide.first_start.secs(),
                100,
                "depth {depth}: the wide job's reservation must hold"
            );
            assert_eq!(res.outcomes.len(), 32);
            assert_eq!(res.dropped_actions, 0);
        }
    }

    #[test]
    fn deeper_protection_never_helps_backfillers() {
        // More reservations can only constrain backfilling: the makespan
        // is non-decreasing in depth on a backfill-heavy trace.
        let mut jobs = Vec::new();
        for i in 0..40u32 {
            let run_s = 100 + (i as i64 * 53) % 900;
            jobs.push(Job::new(i, (i as i64) * 30, run_s, run_s, 1 + (i % 9)));
        }
        let shallow = run(jobs.clone(), 9, 1);
        let deep = run(jobs, 9, 40);
        assert!(
            shallow.report_mean_wait() <= deep.report_mean_wait() + 1e-9,
            "depth-1 mean wait {} vs depth-40 {}",
            shallow.report_mean_wait(),
            deep.report_mean_wait()
        );
    }
}
