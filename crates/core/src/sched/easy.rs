//! Aggressive (EASY) backfilling — the paper's **No-Suspension (NS)**
//! baseline.
//!
//! Section II-A.2: the scheduler gives a reservation only to the *first*
//! job in the queue that cannot start. Any other queued job may backfill
//! onto currently free processors provided it cannot delay that head job,
//! which holds if either
//!
//! 1. it will terminate (by its estimate) before the head job's
//!    reservation ("shadow time"), or
//! 2. it uses no more processors than will still be free at the shadow
//!    time after the head job starts (the "extra" processors).

use sps_trace::Reason;

use crate::policy::{Action, DecideCtx, Policy};
use crate::sched::planner::ReservationLadder;
use crate::sim::SimState;

/// EASY backfilling dispatcher.
#[derive(Clone, Debug, Default)]
pub struct Easy {
    /// Reusable reservation ladder (profile buffer persists across
    /// decides; rebuilt in place each call).
    ladder: ReservationLadder,
}

impl Policy for Easy {
    fn name(&self) -> String {
        "NS (EASY)".into()
    }

    // No decision state; `plan_easy` returns immediately on an empty
    // queue (the ladder field is pure scratch).
    fn quiescent_noop(&self) -> bool {
        true
    }

    fn decide(&mut self, state: &SimState, ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
        plan_easy(state, ctx, actions, &mut self.ladder);
    }
}

/// Shared EASY planning: fills `actions` with starts. Exposed for reuse by
/// the tests and by hybrid policies. `ladder` is caller-owned scratch,
/// rebuilt here when the plan needs a shadow computation.
pub(crate) fn plan_easy(
    state: &SimState,
    ctx: &DecideCtx<'_>,
    actions: &mut Vec<Action>,
    ladder: &mut ReservationLadder,
) {
    let mut free = state.free_count();
    let queued = state.queued();
    let mut idx = 0;

    // Phase 1: start jobs from the head while they fit.
    while idx < queued.len() {
        let id = queued[idx];
        let need = state.width(id);
        if need > free {
            break;
        }
        free -= need;
        actions.push(Action::Start(id));
        idx += 1;
    }
    if idx >= queued.len() {
        return; // everything started
    }

    // Phase 2: the head job `queued[idx]` cannot start. Find its shadow
    // time from the availability profile — accounting for the phase-1
    // starts, which occupy their processors until their estimates.
    let head = queued[idx];
    ladder.rebuild(state);
    for a in actions.iter() {
        let Action::Start(id) = a else { continue };
        ladder.book_start_now(state.job(*id));
    }
    let Some((shadow, mut extra)) = ladder.shadow(state.job(head)) else {
        return; // wider than the machine — construction forbids this
    };

    // Phase 3: backfill the remaining queue in arrival order.
    for &id in &queued[idx + 1..] {
        let job = state.job(id);
        if job.procs > free {
            continue;
        }
        let ends_by_shadow = state.now() + job.estimate <= shadow;
        let fits = if ends_by_shadow {
            free -= job.procs;
            true
        } else if job.procs <= extra {
            free -= job.procs;
            extra -= job.procs;
            true
        } else {
            false
        };
        if fits {
            actions.push(Action::Start(id));
            if ctx.trace.enabled() {
                ctx.trace.decision(
                    state.now().secs(),
                    Reason::Backfilled {
                        job: id.0,
                        shadow: shadow.secs(),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use sps_workload::{Job, JobId};

    fn run(jobs: Vec<Job>, procs: u32) -> crate::sim::SimResult {
        Simulator::new(jobs, procs, Box::<Easy>::default()).run()
    }

    #[test]
    fn backfills_short_job_into_hole() {
        // j0: 8 procs 100 s; j1: 8 procs (blocked, reserved at t=100);
        // j2: 1 proc 50 s — terminates before the shadow, backfills at t=0.
        let jobs = vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 8),
            Job::new(2, 2, 50, 50, 1),
        ];
        // Machine of 9: j0 leaves 1 free.
        let res = run(jobs, 9);
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(j2.first_start.secs(), 2, "short job backfills immediately");
        let j1 = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(j1.first_start.secs(), 100, "head job not delayed");
    }

    #[test]
    fn backfill_must_not_delay_head_job() {
        // j2's estimate (200 s) crosses the shadow (t=100) and it needs the
        // 1 free proc that the head job will need — so it must NOT backfill.
        let jobs = vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 9),
            Job::new(2, 2, 200, 200, 1),
        ];
        let res = run(jobs, 9);
        let j1 = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(j1.first_start.secs(), 100, "head reservation honoured");
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert!(
            j2.first_start.secs() >= 200,
            "long narrow job waits for the head"
        );
    }

    #[test]
    fn backfill_on_extra_processors_allowed() {
        // Head needs 8 of 9; one "extra" processor remains at the shadow,
        // so a 1-proc job of any length may backfill.
        let jobs = vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 8),
            Job::new(2, 2, 10_000, 10_000, 1),
        ];
        let res = run(jobs, 9);
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(
            j2.first_start.secs(),
            2,
            "extra-node rule admits the long narrow job"
        );
        let j1 = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(j1.first_start.secs(), 100);
    }

    #[test]
    fn early_completion_compresses_schedule() {
        // Estimates are exact here, but a completion event still triggers a
        // fresh decision: when j0 finishes, j1 starts immediately.
        let jobs = vec![Job::new(0, 0, 60, 60, 9), Job::new(1, 5, 60, 60, 9)];
        let res = run(jobs, 9);
        let j1 = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(j1.first_start.secs(), 60);
    }

    #[test]
    fn no_starvation_of_wide_jobs() {
        // A stream of short narrow jobs must not push the wide head job
        // back indefinitely: the shadow reservation protects it.
        let mut jobs = vec![Job::new(0, 0, 100, 100, 8), Job::new(1, 1, 1_000, 1_000, 9)];
        for i in 0..20 {
            jobs.push(Job::new(2 + i, 2 + i as i64, 300, 300, 1));
        }
        let res = run(jobs, 9);
        let wide = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(
            wide.first_start.secs(),
            100,
            "wide job starts at its reservation"
        );
        assert_eq!(res.dropped_actions, 0);
    }

    #[test]
    fn utilization_beats_fcfs_on_fragmented_mix() {
        use crate::sched::fcfs::Fcfs;
        let mut jobs = Vec::new();
        for i in 0..40u32 {
            // Alternating full-machine and tiny jobs fragment FCFS badly.
            if i % 2 == 0 {
                jobs.push(Job::new(i, i as i64 * 10, 500, 500, 16));
            } else {
                jobs.push(Job::new(i, i as i64 * 10, 100, 100, 2));
            }
        }
        let easy = Simulator::new(jobs.clone(), 16, Box::<Easy>::default()).run();
        let fcfs = Simulator::new(jobs, 16, Box::new(Fcfs)).run();
        assert!(
            easy.makespan <= fcfs.makespan,
            "EASY should not lengthen the schedule"
        );
    }
}
