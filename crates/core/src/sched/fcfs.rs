//! First-come-first-served, no backfilling.
//!
//! The classical strawman of Section II: jobs start strictly in arrival
//! order; if the head of the queue does not fit, everything behind it
//! waits, leaving processors idle ("an FCFS scheduler would leave the free
//! processors idle even if there were waiting queued jobs requiring only a
//! few processors"). Included as the fragmentation baseline for the
//! utilization benches.

use crate::policy::{Action, DecideCtx, Policy};
use crate::sim::SimState;

/// Strict FCFS dispatcher.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> String {
        "FCFS".into()
    }

    // Stateless; the dispatch loop iterates the (empty) queue only.
    fn quiescent_noop(&self) -> bool {
        true
    }

    fn decide(&mut self, state: &SimState, _ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
        let mut free = state.free_count();
        for &id in state.queued() {
            let need = state.width(id);
            if need > free {
                break; // head-of-line blocking: nothing may overtake
            }
            free -= need;
            actions.push(Action::Start(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use sps_workload::{Job, JobId};

    #[test]
    fn head_of_line_blocks_small_jobs() {
        // 8-proc machine: j0 takes all 8; j1 needs 8 (blocked); j2 needs 1
        // and could run, but FCFS refuses to let it overtake.
        let jobs = vec![
            Job::new(0, 0, 100, 100, 8),
            Job::new(1, 1, 100, 100, 8),
            Job::new(2, 2, 10, 10, 1),
        ];
        let res = Simulator::new(jobs, 8, Box::new(Fcfs)).run();
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(
            j2.first_start.secs(),
            200,
            "small job must wait behind the blocked head"
        );
        assert_eq!(res.dropped_actions, 0);
    }

    #[test]
    fn starts_in_arrival_order_when_fitting() {
        let jobs = vec![
            Job::new(0, 0, 50, 50, 3),
            Job::new(1, 0, 50, 50, 3),
            Job::new(2, 0, 50, 50, 2),
        ];
        let res = Simulator::new(jobs, 8, Box::new(Fcfs)).run();
        assert!(res.outcomes.iter().all(|o| o.wait() == 0));
        assert_eq!(res.makespan, 50);
    }
}
