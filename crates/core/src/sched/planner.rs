//! The shared preemption planner: the machinery every policy's `decide`
//! re-implemented before it lived here.
//!
//! Policies plan against a *mirror* of machine state so several decisions
//! in one instant stay consistent: a planned start consumes mirrored free
//! processors, a planned suspension returns the victim's. This module
//! provides the pieces of that mirror that were duplicated across SS, TSS,
//! IS, EASY, conservative, and flex, all driven by the incremental kernel
//! structures ([`crate::sim::SchedIndex`] and the simulator's availability
//! ledger) instead of per-decide job-table scans:
//!
//! * [`working_free_set`] — the planning free pool (free now ∪ draining),
//! * [`pinned_claims`] — the re-entry reservations of suspended jobs,
//! * [`VictimTable`] — a borrow-based mirror of the running jobs for
//!   victim scans (no per-entry `ProcSet` clones),
//! * [`alloc_avoiding`] — claim-aware placement for fresh dispatches,
//! * [`ReservationLadder`] — the anchor-search/backfill view of the
//!   availability profile shared by the reservation-based baselines.

use sps_cluster::{ProcSet, Profile, SpeedMap};
use sps_simcore::SimTime;
use sps_workload::{Job, JobId};

use crate::sim::SimState;

/// The planning free pool: processors free now *plus* those whose
/// suspension drain is already in flight. Draining processors are
/// promised back within one drain time, and a planner that ignores them
/// re-suspends a fresh victim at every tick of a long drain (the
/// simulator drops actions that race a pending drain; the policy
/// re-decides at the drain-done instant).
pub(crate) fn working_free_set(state: &SimState) -> ProcSet {
    let mut free = state.free_set().clone();
    free.union_with(state.draining_set());
    free
}

/// Union of the processor claims of suspended jobs that are pinned to
/// their original processors (local preemption). A suspended job can only
/// restart on its claimed set, so the union acts as a placement
/// reservation for fresh dispatches. Jobs the fault-recovery policy
/// marked for remapping claim nothing — they may restart anywhere.
pub(crate) fn pinned_claims(state: &SimState) -> ProcSet {
    let mut reserved = ProcSet::empty(state.total_procs());
    for &sid in state.suspended() {
        if state.can_remap(sid) {
            continue;
        }
        reserved.union_with(
            state
                .assigned_set(sid)
                .expect("suspended job keeps its set"),
        );
    }
    reserved
}

/// One running job in a policy's planning mirror. The processor set is
/// borrowed straight from simulator state — building the mirror costs no
/// `ProcSet` clones (policies only read state during `decide`).
pub(crate) struct Victim<'a> {
    pub id: JobId,
    /// The policy's suspension priority for this job (xfactor for SS/TSS,
    /// instantaneous xfactor for IS), frozen at mirror construction.
    pub prio: f64,
    pub procs: u32,
    pub set: &'a ProcSet,
}

/// The running-job mirror used for victim scans. Entries start in
/// dispatch order (the simulator's running-queue order); policies that
/// scan cheapest-victim-first call [`VictimTable::sort_ascending`].
pub(crate) struct VictimTable<'a> {
    pub entries: Vec<Victim<'a>>,
}

impl<'a> VictimTable<'a> {
    /// Mirror every running job, with `prio` as its suspension priority.
    pub fn running(state: &'a SimState, prio: impl Fn(JobId) -> f64) -> Self {
        VictimTable {
            entries: state
                .running()
                .iter()
                .map(|&id| Victim {
                    id,
                    prio: prio(id),
                    procs: state.job(id).procs,
                    set: state.assigned_set(id).expect("running job has a set"),
                })
                .collect(),
        }
    }

    /// Order by ascending priority (ids break ties deterministically):
    /// the cheapest victims come first, and a scan may stop at the first
    /// entry whose priority disqualifies it.
    pub fn sort_ascending(&mut self) {
        self.entries
            .sort_by(|a, b| a.prio.total_cmp(&b.prio).then(a.id.cmp(&b.id)));
    }

    /// Remove the entries at `indices` (any order), feeding each removed
    /// victim to `f`. Uses descending-index `swap_remove`, so surviving
    /// entries may be reordered — callers that rely on a sorted mirror
    /// re-sort afterwards.
    pub fn remove_all(&mut self, mut indices: Vec<usize>, mut f: impl FnMut(Victim<'a>)) {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        for idx in indices {
            f(self.entries.swap_remove(idx));
        }
    }
}

/// Choose `need` processors out of `free ∖ blocked`, preferring ones
/// outside `reserved`.
///
/// * `blocked` is a hard constraint: the claims of higher-priority
///   suspended jobs that could not be placed this instant. Handing those
///   out would let lower-priority squatters rotate through the claim and
///   starve its owner.
/// * `reserved` is a soft preference: all suspended claims. A suspended
///   job can only restart on its original processors, so giving them to
///   fresh arrivals forces a reassembly preemption later — under backlog
///   that cascades into suspension storms and a serialized tail.
///
/// Returns `None` if fewer than `need` unblocked processors exist. The
/// common case (enough unreserved processors) carves the answer in one
/// word-level pass with no intermediate set materialized.
///
/// On a heterogeneous machine with a speed-aware [`SpeedMap`] the picks
/// within each preference class are fastest-first rather than
/// lowest-index-first: the job's gang rate is the minimum speed of its
/// set, so maximizing that minimum shortens the dispatch. A uniform (or
/// placement-blind) map degenerates to the homogeneous order exactly.
pub(crate) fn alloc_avoiding(
    free: &ProcSet,
    blocked: &ProcSet,
    reserved: &ProcSet,
    need: u32,
    speed: &SpeedMap,
) -> Option<ProcSet> {
    // Fast path: enough processors that are neither blocked nor reserved.
    let mut avoid = blocked.clone();
    avoid.union_with(reserved);
    if let Some(set) = speed.take_fastest_excluding(free, &avoid, need) {
        return Some(set);
    }
    // Not enough unreserved processors: take all of them plus the fewest
    // possible reserved (but never blocked) ones.
    let mut preferred = free.clone();
    preferred.subtract(&avoid);
    let have = preferred.count();
    let mut rest = free.clone();
    rest.subtract(blocked);
    rest.subtract(&preferred);
    let extra = speed.take_fastest(&rest, need - have)?;
    preferred.union_with(&extra);
    Some(preferred)
}

/// The anchor-search view of the availability profile shared by the
/// reservation-based baselines (conservative, EASY, flex): reservations
/// are booked in priority order against a profile that starts from the
/// simulator's incrementally-maintained release ledger.
pub(crate) struct ReservationLadder {
    profile: Profile,
    now: SimTime,
}

impl ReservationLadder {
    /// A fresh ladder over the current availability profile.
    pub fn new(state: &SimState) -> Self {
        ReservationLadder {
            profile: state.profile(),
            now: state.now(),
        }
    }

    /// Book the earliest reservation for `job` consistent with everything
    /// booked so far; returns its guaranteed start time (`now` means the
    /// job can start immediately).
    pub fn reserve(&mut self, job: &Job) -> SimTime {
        self.profile
            .reserve_earliest(job.procs, job.estimate, self.now)
            .expect("every job fits an empty machine eventually")
            .start
    }

    /// Whether `job` can start *now* without delaying any booked
    /// reservation — i.e. its earliest anchor against the current profile
    /// is the present instant. If so, its occupancy is booked.
    pub fn try_backfill_now(&mut self, job: &Job) -> bool {
        if self.profile.find_anchor(job.procs, job.estimate, self.now) == Some(self.now) {
            self.profile.reserve(self.now, job.estimate, job.procs);
            true
        } else {
            false
        }
    }

    /// Book the occupancy of a start decided earlier this instant (EASY's
    /// phase-1 starts occupy processors until their estimates).
    pub fn book_start_now(&mut self, job: &Job) {
        self.profile.reserve(self.now, job.estimate, job.procs);
    }

    /// EASY's shadow computation for the blocked head job: the earliest
    /// time `job` fits (its reservation anchor) and the *extra*
    /// processors — those free at the shadow beyond what the head needs,
    /// available to arbitrarily long backfillers.
    pub fn shadow(&self, job: &Job) -> Option<(SimTime, u32)> {
        let shadow = self
            .profile
            .find_anchor(job.procs, job.estimate, self.now)?;
        let extra = self.profile.avail_at(shadow).saturating_sub(job.procs);
        Some((shadow, extra))
    }
}
