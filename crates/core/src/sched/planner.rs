//! The shared preemption planner: the machinery every policy's `decide`
//! re-implemented before it lived here.
//!
//! Policies plan against a *mirror* of machine state so several decisions
//! in one instant stay consistent: a planned start consumes mirrored free
//! processors, a planned suspension returns the victim's. This module
//! provides the pieces of that mirror that were duplicated across SS, TSS,
//! IS, EASY, conservative, and flex, all driven by the incremental kernel
//! structures ([`crate::sim::SchedIndex`] and the simulator's availability
//! ledger) instead of per-decide job-table scans:
//!
//! * [`DecideArena`] — policy-owned scratch buffers so the decide path
//!   performs no transient heap allocation (the only allocations left are
//!   the `ProcSet`s handed out inside emitted actions),
//! * [`working_free_set_into`] — the planning free pool (free ∪ draining),
//! * [`pinned_claims_into`] — the re-entry reservations of suspended jobs,
//! * [`VictimTable`] — a reusable POD mirror of the running jobs for
//!   victim scans (processor sets are fetched from simulator state on
//!   demand — the entries carry no borrows, so the table persists across
//!   decides inside the arena),
//! * [`alloc_avoiding_in`] — claim-aware placement for fresh dispatches,
//! * [`ReservationLadder`] — the anchor-search/backfill view of the
//!   availability profile shared by the reservation-based baselines,
//!   rebuilt in place each decide.

use sps_cluster::{ProcSet, Profile, SpeedMap};
use sps_simcore::SimTime;
use sps_workload::{Job, JobId};

use crate::sim::SimState;

/// Fill `dst` with the planning free pool: processors free now *plus*
/// those whose suspension drain is already in flight. Draining processors
/// are promised back within one drain time, and a planner that ignores
/// them re-suspends a fresh victim at every tick of a long drain (the
/// simulator drops actions that race a pending drain; the policy
/// re-decides at the drain-done instant).
pub(crate) fn working_free_set_into(state: &SimState, dst: &mut ProcSet) {
    dst.copy_from(state.free_set());
    dst.union_with(state.draining_set());
}

/// The owned form of [`working_free_set_into`], for callers without an
/// arena.
pub(crate) fn working_free_set(state: &SimState) -> ProcSet {
    let mut free = state.free_set().clone();
    free.union_with(state.draining_set());
    free
}

/// Fill `dst` with the union of the processor claims of suspended jobs
/// that are pinned to their original processors (local preemption). A
/// suspended job can only restart on its claimed set, so the union acts
/// as a placement reservation for fresh dispatches. Jobs the
/// fault-recovery policy marked for remapping claim nothing — they may
/// restart anywhere. `dst` must already be cleared to the machine
/// universe.
pub(crate) fn pinned_claims_into(state: &SimState, dst: &mut ProcSet) {
    debug_assert!(dst.is_empty() && dst.universe() == state.total_procs());
    for &sid in state.suspended() {
        if state.can_remap(sid) {
            continue;
        }
        dst.union_with(
            state
                .assigned_set(sid)
                .expect("suspended job keeps its set"),
        );
    }
}

/// One running job in a policy's planning mirror — plain data (no borrow
/// of the job's processor set), so tables of victims can persist across
/// decides. Callers needing the set fetch it through
/// [`SimState::assigned_set`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Victim {
    pub id: JobId,
    /// The policy's suspension priority for this job (xfactor for SS/TSS,
    /// instantaneous xfactor for IS), frozen at mirror construction.
    pub prio: f64,
    pub procs: u32,
}

/// The running-job mirror used for victim scans. Entries start in
/// dispatch order (the simulator's running-queue order); policies that
/// scan cheapest-victim-first call [`VictimTable::sort_ascending`].
#[derive(Clone, Debug, Default)]
pub(crate) struct VictimTable {
    pub entries: Vec<Victim>,
}

impl VictimTable {
    /// Mirror every running job into the reused entry buffer, with `prio`
    /// as its suspension priority.
    pub fn fill_running(&mut self, state: &SimState, prio: impl Fn(JobId) -> f64) {
        self.entries.clear();
        self.entries
            .extend(state.running().iter().map(|&id| Victim {
                id,
                prio: prio(id),
                procs: state.width(id),
            }));
    }

    /// Order by ascending priority (ids break ties deterministically):
    /// the cheapest victims come first, and a scan may stop at the first
    /// entry whose priority disqualifies it.
    pub fn sort_ascending(&mut self) {
        self.entries
            .sort_by(|a, b| a.prio.total_cmp(&b.prio).then(a.id.cmp(&b.id)));
    }

    /// Remove the entries at `indices` (any order), feeding each removed
    /// victim to `f`; `indices` is drained for reuse. Uses
    /// descending-index `swap_remove`, so surviving entries may be
    /// reordered — callers that rely on a sorted mirror re-sort
    /// afterwards.
    pub fn remove_all(&mut self, indices: &mut Vec<usize>, mut f: impl FnMut(Victim)) {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        for idx in indices.drain(..) {
            f(self.entries.swap_remove(idx));
        }
    }
}

/// Scratch sets for [`alloc_avoiding_in`], reused across calls. The
/// sets self-size on first use ([`ProcSet::copy_from`] adopts the source
/// universe), so the zero-universe default is fine.
#[derive(Clone, Debug)]
pub(crate) struct AllocScratch {
    avoid: ProcSet,
    preferred: ProcSet,
    rest: ProcSet,
}

impl Default for AllocScratch {
    fn default() -> Self {
        AllocScratch {
            avoid: ProcSet::empty(0),
            preferred: ProcSet::empty(0),
            rest: ProcSet::empty(0),
        }
    }
}

/// Policy-owned scratch for the decide path. Everything a decide
/// allocates transiently — the planning free pool, the blocked/reserved
/// claim sets, the victim mirror, index lists, the idle priority list —
/// lives here and is reused across calls, so steady-state decides touch
/// the allocator only for the `ProcSet`s they emit inside actions.
///
/// [`DecideArena::reset`] re-clears every buffer for a new decide and
/// re-sizes the processor sets if the machine universe changed (it never
/// does mid-run; the check makes the arena safe to carry across runs on
/// different machines).
#[derive(Clone, Debug)]
pub(crate) struct DecideArena {
    /// The mirrored planning free pool (free ∪ draining).
    pub free: ProcSet,
    /// Claims of higher-priority suspended jobs not yet placeable.
    pub blocked: ProcSet,
    /// All suspended claims — a placement *preference*, not a bar.
    pub reserved: ProcSet,
    /// Re-entry scan: needed processors not currently free.
    pub missing: ProcSet,
    /// Re-entry scan: processors covered by qualifying victims.
    pub covered: ProcSet,
    /// Victim/candidate index list (dead between loop iterations).
    pub indices: Vec<usize>,
    /// Chosen-victim index list (alive together with `indices`).
    pub chosen: Vec<usize>,
    /// The (priority, id) idle list, rebuilt every decide.
    pub idle: Vec<(f64, JobId)>,
    /// The running-job victim mirror.
    pub table: VictimTable,
    /// Scratch for claim-aware placement.
    pub alloc: AllocScratch,
}

impl Default for DecideArena {
    fn default() -> Self {
        DecideArena {
            free: ProcSet::empty(0),
            blocked: ProcSet::empty(0),
            reserved: ProcSet::empty(0),
            missing: ProcSet::empty(0),
            covered: ProcSet::empty(0),
            indices: Vec::new(),
            chosen: Vec::new(),
            idle: Vec::new(),
            table: VictimTable::default(),
            alloc: AllocScratch::default(),
        }
    }
}

impl DecideArena {
    /// Clear every buffer for a fresh decide against a `total`-processor
    /// machine.
    pub fn reset(&mut self, total: u32) {
        for set in [
            &mut self.free,
            &mut self.blocked,
            &mut self.reserved,
            &mut self.missing,
            &mut self.covered,
        ] {
            if set.universe() != total {
                *set = ProcSet::empty(total);
            } else {
                set.clear();
            }
        }
        self.indices.clear();
        self.chosen.clear();
        self.idle.clear();
        self.table.entries.clear();
    }
}

/// Choose `need` processors out of `free ∖ blocked`, preferring ones
/// outside `reserved`.
///
/// * `blocked` is a hard constraint: the claims of higher-priority
///   suspended jobs that could not be placed this instant. Handing those
///   out would let lower-priority squatters rotate through the claim and
///   starve its owner.
/// * `reserved` is a soft preference: all suspended claims. A suspended
///   job can only restart on its original processors, so giving them to
///   fresh arrivals forces a reassembly preemption later — under backlog
///   that cascades into suspension storms and a serialized tail.
///
/// Returns `None` if fewer than `need` unblocked processors exist. The
/// returned set is the only allocation: intermediate set algebra runs in
/// `scratch`, and the common case (enough unreserved processors) carves
/// the answer in one word-level pass with no intermediate set
/// materialized at all.
///
/// On a heterogeneous machine with a speed-aware [`SpeedMap`] the picks
/// within each preference class are fastest-first rather than
/// lowest-index-first: the job's gang rate is the minimum speed of its
/// set, so maximizing that minimum shortens the dispatch. A uniform (or
/// placement-blind) map degenerates to the homogeneous order exactly.
pub(crate) fn alloc_avoiding_in(
    free: &ProcSet,
    blocked: &ProcSet,
    reserved: &ProcSet,
    need: u32,
    speed: &SpeedMap,
    scratch: &mut AllocScratch,
) -> Option<ProcSet> {
    // Fast path: enough processors that are neither blocked nor reserved.
    scratch.avoid.copy_from(blocked);
    scratch.avoid.union_with(reserved);
    if let Some(set) = speed.take_fastest_excluding(free, &scratch.avoid, need) {
        return Some(set);
    }
    // Not enough unreserved processors: take all of them plus the fewest
    // possible reserved (but never blocked) ones.
    scratch.preferred.copy_from(free);
    scratch.preferred.subtract(&scratch.avoid);
    let have = scratch.preferred.count();
    scratch.rest.copy_from(free);
    scratch.rest.subtract(blocked);
    scratch.rest.subtract(&scratch.preferred);
    let mut set = speed.take_fastest(&scratch.rest, need - have)?;
    set.union_with(&scratch.preferred);
    Some(set)
}

/// The anchor-search view of the availability profile shared by the
/// reservation-based baselines (conservative, EASY, flex): reservations
/// are booked in priority order against a profile that starts from the
/// simulator's incrementally-maintained release ledger. The ladder is
/// policy-owned and [`rebuilt`](ReservationLadder::rebuild) in place each
/// decide, reusing the profile's breakpoint buffer.
#[derive(Clone, Debug)]
pub(crate) struct ReservationLadder {
    profile: Profile,
    now: SimTime,
}

impl Default for ReservationLadder {
    fn default() -> Self {
        ReservationLadder {
            profile: Profile::empty(),
            now: SimTime::new(0),
        }
    }
}

impl ReservationLadder {
    /// Rematerialize the ladder over the current availability profile,
    /// reusing the breakpoint buffer.
    pub fn rebuild(&mut self, state: &SimState) {
        state.profile_into(&mut self.profile);
        self.now = state.now();
    }

    /// Book the earliest reservation for `job` consistent with everything
    /// booked so far; returns its guaranteed start time (`now` means the
    /// job can start immediately).
    pub fn reserve(&mut self, job: &Job) -> SimTime {
        self.profile
            .reserve_earliest(job.procs, job.estimate, self.now)
            .expect("every job fits an empty machine eventually")
            .start
    }

    /// Whether `job` can start *now* without delaying any booked
    /// reservation — i.e. its earliest anchor against the current profile
    /// is the present instant. If so, its occupancy is booked.
    pub fn try_backfill_now(&mut self, job: &Job) -> bool {
        if self.profile.find_anchor(job.procs, job.estimate, self.now) == Some(self.now) {
            self.profile.reserve(self.now, job.estimate, job.procs);
            true
        } else {
            false
        }
    }

    /// Book the occupancy of a start decided earlier this instant (EASY's
    /// phase-1 starts occupy processors until their estimates).
    pub fn book_start_now(&mut self, job: &Job) {
        self.profile.reserve(self.now, job.estimate, job.procs);
    }

    /// EASY's shadow computation for the blocked head job: the earliest
    /// time `job` fits (its reservation anchor) and the *extra*
    /// processors — those free at the shadow beyond what the head needs,
    /// available to arbitrarily long backfillers.
    pub fn shadow(&self, job: &Job) -> Option<(SimTime, u32)> {
        let shadow = self
            .profile
            .find_anchor(job.procs, job.estimate, self.now)?;
        let extra = self.profile.avail_at(shadow).saturating_sub(job.procs);
        Some((shadow, extra))
    }
}
