//! Selective Suspension (SS) and Tunable Selective Suspension (TSS) —
//! the paper's contribution (Section IV).
//!
//! An idle job may preempt running jobs whose suspension priority (the
//! expansion factor) is lower by at least the **suspension factor** SF:
//! preemption requires `xfactor(idle) ≥ SF × xfactor(victim)`. Queued and
//! suspended jobs are served in descending priority; because any waiting
//! job's xfactor grows without bound, it eventually out-prioritizes some
//! running job — so SS runs **backfilling without reservation guarantees**
//! and is still starvation-free (Section IV-B).
//!
//! Rules implemented from the paper's pseudocode:
//!
//! * the preemption routine is invoked periodically (every minute); plain
//!   starts/resumes onto free processors happen at every event instant,
//! * **width restriction**: a fresh idle job may only suspend victims at
//!   most twice its own width ("the number of processors requested by a
//!   suspending job should be at least half of the number of processors
//!   requested by the job that it suspends"), preventing narrow jobs from
//!   evicting wide ones,
//! * **re-entry**: a previously suspended job must reacquire exactly its
//!   original processors; for re-entry the width restriction is dropped,
//!   and every running job overlapping the needed set must qualify (and is
//!   suspended) for the re-entry to proceed,
//! * victims are suspended in decreasing width until enough processors
//!   accumulate,
//! * **TSS**: with limits enabled, a running job whose priority exceeds
//!   `1.5 × average slowdown of its category` cannot be chosen as a victim
//!   (Section IV-E), bounding worst-case slowdown/turnaround.

use sps_cluster::ProcSet;
use sps_metrics::JobOutcome;
use sps_telemetry::Obs;
use sps_trace::Reason;
use sps_workload::{Category, JobId};

use crate::policy::{Action, DecideCtx, Policy};
use crate::sched::planner::{self, DecideArena};
use crate::sched::tss::TssLimits;
use crate::sim::SimState;

/// Configuration for the SS/TSS family.
#[derive(Clone, Debug)]
pub struct SsConfig {
    /// Suspension factor: minimum priority ratio for preemption
    /// (the paper evaluates 1.5, 2, and 5).
    pub sf: f64,
    /// Enforce the ½-width suspend rule for fresh jobs (paper default:
    /// on; the ablation bench switches it off).
    pub width_restriction: bool,
    /// Allow suspended jobs to restart on *any* processors (process
    /// migration). The paper's distributed-memory model forbids this;
    /// the `ablation_migration` experiment turns it on to price the
    /// local-restart constraint.
    pub migration: bool,
    /// TSS per-category preemption-disable limits; `None` is plain SS.
    pub limits: Option<TssLimits>,
}

impl SsConfig {
    /// Plain SS with the given suspension factor.
    pub fn ss(sf: f64) -> Self {
        assert!(
            sf >= 1.0,
            "a suspension factor below 1 thrashes unconditionally"
        );
        SsConfig {
            sf,
            width_restriction: true,
            migration: false,
            limits: None,
        }
    }

    /// TSS: SS plus running-average category limits.
    pub fn tss(sf: f64) -> Self {
        SsConfig {
            limits: Some(TssLimits::new()),
            ..Self::ss(sf)
        }
    }
}

/// The SS/TSS dispatcher.
#[derive(Clone, Debug)]
pub struct SelectiveSuspension {
    cfg: SsConfig,
    /// Per-decide scratch. The preemption routine runs every minute for
    /// the whole length of a run, so the planning mirror (idle list,
    /// free/blocked/reserved sets, victim table, index lists) is rebuilt
    /// tens of thousands of times per simulation; reusing one arena keeps
    /// the entire decide path off the allocator.
    arena: DecideArena,
}

impl SelectiveSuspension {
    /// Build from a config.
    pub fn new(cfg: SsConfig) -> Self {
        SelectiveSuspension {
            cfg,
            arena: DecideArena::default(),
        }
    }

    /// Plain SS with suspension factor `sf`.
    pub fn ss(sf: f64) -> Self {
        Self::new(SsConfig::ss(sf))
    }

    /// Tunable SS with suspension factor `sf`.
    pub fn tss(sf: f64) -> Self {
        Self::new(SsConfig::tss(sf))
    }

    /// If `victim` is protected from preemption (TSS limit exceeded),
    /// the category, the victim's xfactor, and the limit it exceeds.
    fn protection(&self, state: &SimState, victim: JobId) -> Option<(Category, f64, f64)> {
        let limits = self.cfg.limits.as_ref()?;
        let job = state.job(victim);
        let cat = Category::classify(job.estimate, job.procs);
        let limit = limits.limit_for(cat);
        let xf = state.xfactor(victim);
        (xf > limit).then_some((cat, xf, limit))
    }
}

impl Policy for SelectiveSuspension {
    fn name(&self) -> String {
        let kind = if self.cfg.limits.is_some() {
            "TSS"
        } else {
            "SS"
        };
        let mut name = format!("{kind} (SF={}", self.cfg.sf);
        if !self.cfg.width_restriction {
            name.push_str(", no width rule");
        }
        if self.cfg.migration {
            name.push_str(", migration");
        }
        name.push(')');
        name
    }

    fn needs_tick(&self) -> bool {
        true
    }

    // The preemption routine only acts on idle (queued + suspended) jobs;
    // with none, the loop body never runs. The only mutable state — the
    // TSS per-category limits — changes in `on_completion`, not here.
    fn quiescent_noop(&self) -> bool {
        true
    }

    fn decide(&mut self, state: &SimState, ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
        // Fast certification of the common no-op tick. Every action the
        // loop below can emit requires at least one of:
        //
        // * an idle job no wider than the working free pool (placement and
        //   re-entry both need `procs` processors out of free ∪ draining),
        // * a victim qualification `x(idle) ≥ SF × x(victim)` — bounded
        //   from below by the cheapest running job, since the width rule,
        //   TSS limits, and overlap checks only *remove* candidates.
        //
        // When neither holds, the decide provably produces nothing: skip
        // the idle sort, the mirror, and every per-decide allocation.
        // Traced runs take the full path — the scan can emit
        // `BlockedByDisableLimit` records without acting — as do runs
        // that ask for the reference scan outright.
        if !ctx.reference && !ctx.trace.enabled() {
            let wf = state.free_count() + state.draining_set().count();
            let idle_ids = || state.queued().iter().chain(state.suspended().iter());
            if !idle_ids().any(|&id| state.width(id) <= wf) {
                let qualifies = ctx.tick && {
                    let min_run = state
                        .running()
                        .iter()
                        .map(|&id| state.xfactor(id))
                        .fold(f64::INFINITY, f64::min);
                    idle_ids().any(|&id| state.xfactor(id) >= self.cfg.sf * min_run)
                };
                if !qualifies {
                    return;
                }
            }
        }

        // All per-decide scratch lives in the policy-owned arena: taking
        // it out of `self` lets the loop borrow its fields independently
        // while `self.protection` is still callable.
        let mut arena = std::mem::take(&mut self.arena);
        arena.reset(state.total_procs());

        // Idle jobs (queued + suspended) in descending priority; ids break
        // ties deterministically.
        arena.idle.extend(
            state
                .queued()
                .iter()
                .chain(state.suspended().iter())
                .map(|&id| (state.xfactor(id), id)),
        );
        arena
            .idle
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        // Plan against free processors *plus* those whose suspension
        // drain is already in flight (see [`planner::working_free_set_into`]).
        planner::working_free_set_into(state, &mut arena.free);

        // `arena.blocked` — the processor claims of higher-priority
        // suspended jobs that could not be placed yet. A suspended job can
        // only ever restart on its original processors, so its claim acts
        // as a priority-ordered reservation: lower-priority fresh jobs
        // must not be placed on it, or the suspended job starves while
        // squatters rotate through its set (very long suspended jobs,
        // whose xfactor grows slowly, would otherwise wait practically
        // forever under sustained load).
        //
        // `arena.reserved` — all suspended claims, used only as a
        // placement *preference* for procs not strictly blocked. With
        // migration, suspended jobs can restart anywhere, so no claims
        // need protecting.
        if !self.cfg.migration {
            planner::pinned_claims_into(state, &mut arena.reserved);
        }

        // The processor set of a planned victim, fetched from simulator
        // state on demand (the mirror entries are plain data).
        let vset = |vid: JobId| state.assigned_set(vid).expect("running job has a set");

        // The running mirror is only consulted on ticks (the paper's
        // once-a-minute preemption routine); between ticks only free
        // processors are handed out. Built lazily, sorted by ascending
        // victim priority as in the pseudocode's first sort: most tick
        // decides place or skip every idle job without a victim scan, so
        // the xfactor sweep over the running set is deferred until one
        // actually starts.
        let mut table_built = false;
        macro_rules! ensure_table {
            () => {
                if !table_built {
                    table_built = true;
                    arena.table.fill_running(state, |vid| state.xfactor(vid));
                    arena.table.sort_ascending();
                    if ctx.metrics.enabled() {
                        ctx.metrics.emit(&Obs::VictimScan {
                            scanned: arena.table.entries.len() as u32,
                        });
                    }
                }
            };
        }

        for &(prio_i, id) in &arena.idle {
            if state.is_suspended(id) && !self.cfg.migration && !state.can_remap(id) {
                // Re-entry: needs exactly its original processors.
                let needed = state.assigned_set(id).expect("suspended job keeps its set");
                if state.is_stranded(id) {
                    // A reserved processor is down: re-entry cannot succeed
                    // no matter how many victims are suspended, so skip the
                    // victim scan but keep the claim protected for the
                    // repair instant.
                    arena.blocked.union_with(needed);
                    continue;
                }
                arena.missing.copy_from(needed);
                arena.missing.subtract(&arena.free);
                if arena.missing.is_empty() {
                    arena.free.subtract(needed);
                    arena.reserved.subtract(needed);
                    actions.push(Action::Resume(id));
                    if ctx.trace.enabled() {
                        ctx.trace.decision(
                            state.now().secs(),
                            Reason::ReentryOnOriginalProcs {
                                job: id.0,
                                victims: 0,
                            },
                        );
                    }
                    continue;
                }
                if !ctx.tick {
                    arena.blocked.union_with(needed);
                    continue;
                }
                // Preemption routine: every running job overlapping the
                // needed set must qualify as a victim (no width
                // restriction for re-entry).
                ensure_table!();
                arena.indices.clear();
                arena.covered.clear();
                for (idx, r) in arena.table.entries.iter().enumerate() {
                    let rset = vset(r.id);
                    if !rset.overlaps(needed) {
                        continue;
                    }
                    // Re-entry is exempt from the TSS limit: the suspended
                    // job is the one whose variance the limit exists to
                    // bound, and a protected squatter on its processors
                    // would otherwise pin it out indefinitely.
                    if prio_i >= self.cfg.sf * r.prio {
                        arena.indices.push(idx);
                        arena.covered.union_with(rset);
                    }
                }
                if !arena.missing.is_subset(&arena.covered) {
                    // Some needed processor is held by a non-preemptible
                    // job; keep the claim blocked and try again later.
                    arena.blocked.union_with(needed);
                    continue;
                }
                // Suspend every overlapping candidate (they all sit on
                // needed processors) and re-enter.
                let victim_count = arena.indices.len() as u32;
                let (table, indices) = (&mut arena.table, &mut arena.indices);
                table.remove_all(indices, |r| {
                    let rset = vset(r.id);
                    arena.free.union_with(rset);
                    arena.reserved.union_with(rset); // victims will want these back
                    if ctx.trace.enabled() {
                        ctx.trace.decision(
                            state.now().secs(),
                            Reason::PreemptedVictim {
                                victim: r.id.0,
                                suspender: id.0,
                                victim_xf: r.prio,
                                suspender_xf: prio_i,
                            },
                        );
                    }
                    actions.push(Action::Suspend(r.id));
                });
                arena.table.sort_ascending();
                debug_assert!(needed.is_subset(&arena.free));
                arena.free.subtract(needed);
                arena.reserved.subtract(needed);
                actions.push(Action::Resume(id));
                if ctx.trace.enabled() {
                    ctx.trace.decision(
                        state.now().secs(),
                        Reason::ReentryOnOriginalProcs {
                            job: id.0,
                            victims: victim_count,
                        },
                    );
                }
            } else {
                // Fresh job (or, with migration enabled, a suspended job
                // restarting anywhere): may use free processors outside
                // the claims of higher-priority suspended jobs.
                let dispatch = |set: ProcSet| {
                    if state.is_suspended(id) {
                        Action::ResumeOn(id, set)
                    } else {
                        Action::StartOn(id, set)
                    }
                };
                let need = state.width(id);
                // Usable width: processors inside `blocked` belong to a
                // higher-priority suspended job and do not count.
                let allowed = arena.free.count_excluding(&arena.blocked);
                if need <= allowed {
                    let set = planner::alloc_avoiding_in(
                        &arena.free,
                        &arena.blocked,
                        &arena.reserved,
                        need,
                        state.speed_map(),
                        &mut arena.alloc,
                    )
                    .expect("count checked");
                    arena.free.subtract(&set);
                    actions.push(dispatch(set));
                    continue;
                }
                if !ctx.tick {
                    continue;
                }
                // Preemption routine: accumulate qualifying victims until
                // enough unblocked processors exist, then suspend the
                // widest first.
                ensure_table!();
                arena.indices.clear();
                let mut gain = allowed;
                for (idx, r) in arena.table.entries.iter().enumerate() {
                    if gain >= need {
                        break;
                    }
                    if prio_i < self.cfg.sf * r.prio {
                        // running is sorted by ascending priority: nothing
                        // further qualifies either.
                        break;
                    }
                    if self.cfg.width_restriction && r.procs > 2 * need {
                        continue;
                    }
                    if let Some((cat, xf, limit)) = self.protection(state, r.id) {
                        if ctx.trace.enabled() {
                            ctx.trace.decision(
                                state.now().secs(),
                                Reason::BlockedByDisableLimit {
                                    victim: r.id.0,
                                    category: cat.name(),
                                    xfactor: xf,
                                    limit,
                                },
                            );
                        }
                        continue;
                    }
                    arena.indices.push(idx);
                    gain += vset(r.id).count_excluding(&arena.blocked);
                }
                if gain < need {
                    continue;
                }
                // Suspend in decreasing usable width until the job fits.
                {
                    let (table, blocked) = (&arena.table, &arena.blocked);
                    arena.indices.sort_unstable_by(|&a, &b| {
                        vset(table.entries[b].id)
                            .count_excluding(blocked)
                            .cmp(&vset(table.entries[a].id).count_excluding(blocked))
                    });
                }
                arena.chosen.clear();
                let mut have = allowed;
                for &idx in &arena.indices {
                    if have >= need {
                        break;
                    }
                    have += vset(arena.table.entries[idx].id).count_excluding(&arena.blocked);
                    arena.chosen.push(idx);
                }
                let (table, chosen) = (&mut arena.table, &mut arena.chosen);
                table.remove_all(chosen, |r| {
                    let rset = vset(r.id);
                    arena.free.union_with(rset);
                    arena.reserved.union_with(rset); // victims will want these back
                    if ctx.trace.enabled() {
                        ctx.trace.decision(
                            state.now().secs(),
                            Reason::PreemptedVictim {
                                victim: r.id.0,
                                suspender: id.0,
                                victim_xf: r.prio,
                                suspender_xf: prio_i,
                            },
                        );
                    }
                    actions.push(Action::Suspend(r.id));
                });
                arena.table.sort_ascending();
                debug_assert!(arena.free.count_excluding(&arena.blocked) >= need);
                let set = planner::alloc_avoiding_in(
                    &arena.free,
                    &arena.blocked,
                    &arena.reserved,
                    need,
                    state.speed_map(),
                    &mut arena.alloc,
                )
                .expect("gain accounted");
                arena.free.subtract(&set);
                actions.push(dispatch(set));
            }
        }
        self.arena = arena;
    }

    fn on_completion(&mut self, outcome: &JobOutcome) {
        if let Some(limits) = &mut self.cfg.limits {
            limits.record(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use sps_workload::Job;

    fn run_ss(jobs: Vec<Job>, procs: u32, sf: f64) -> crate::sim::SimResult {
        Simulator::new(jobs, procs, Box::new(SelectiveSuspension::ss(sf))).run()
    }

    #[test]
    fn short_job_preempts_long_after_priority_gap() {
        // Long job (est 100 000 s) hogs the machine; a short job (est
        // 600 s) arrives at t=1000. xfactor(short) reaches SF=2 after
        // waiting 600 s; the next minute tick then preempts the long job.
        let jobs = vec![
            Job::new(0, 0, 100_000, 100_000, 8),
            Job::new(1, 1_000, 600, 600, 8),
        ];
        let res = run_ss(jobs, 8, 2.0);
        let short = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        // Needs xfactor ≥ 2 × 1.0 → wait ≥ 600 → earliest tick at 1620.
        assert_eq!(short.first_start.secs(), 1_620);
        assert_eq!(short.wait(), 620);
        let long = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        assert_eq!(long.suspensions, 1);
        // Long resumes when the short finishes and completes with its full
        // work done.
        assert_eq!(long.completion.secs(), 1_620 + 600 + (100_000 - 1_620));
        assert_eq!(res.preemptions, 1);
        assert_eq!(res.dropped_actions, 0);
    }

    #[test]
    fn higher_sf_waits_longer() {
        let jobs = |_: ()| {
            vec![
                Job::new(0, 0, 100_000, 100_000, 8),
                Job::new(1, 1_000, 600, 600, 8),
            ]
        };
        let w2 = run_ss(jobs(()), 8, 2.0)
            .outcomes
            .iter()
            .find(|o| o.id == JobId(1))
            .unwrap()
            .wait();
        let w5 = run_ss(jobs(()), 8, 5.0)
            .outcomes
            .iter()
            .find(|o| o.id == JobId(1))
            .unwrap()
            .wait();
        assert!(
            w5 > w2,
            "SF=5 ({w5}) must delay preemption past SF=2 ({w2})"
        );
        // SF=5 needs wait ≥ 4 × 600 = 2400 s.
        assert!(w5 >= 2_400);
    }

    #[test]
    fn width_restriction_blocks_narrow_suspending_wide() {
        // A 1-proc job cannot suspend an 8-proc job (8 > 2×1) no matter
        // how high its priority grows; it must wait for a natural hole.
        let jobs = vec![
            Job::new(0, 0, 10_000, 10_000, 8),
            Job::new(1, 10, 60, 60, 1),
        ];
        let res = run_ss(jobs, 8, 1.5);
        let narrow = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(narrow.first_start.secs(), 10_000, "no preemption allowed");
        assert_eq!(res.preemptions, 0);
    }

    #[test]
    fn without_width_restriction_narrow_preempts() {
        let jobs = vec![
            Job::new(0, 0, 10_000, 10_000, 8),
            Job::new(1, 10, 60, 60, 1),
        ];
        let mut cfg = SsConfig::ss(1.5);
        cfg.width_restriction = false;
        let res = Simulator::new(jobs, 8, Box::new(SelectiveSuspension::new(cfg))).run();
        let narrow = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert!(narrow.first_start.secs() < 10_000);
        assert_eq!(res.preemptions, 1);
    }

    #[test]
    fn wide_job_preempts_multiple_narrow_victims() {
        // Four 2-proc long jobs fill the machine; an 8-proc short job must
        // suspend all of them at once.
        let mut jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 0, 50_000, 50_000, 2)).collect();
        jobs.push(Job::new(4, 10, 300, 300, 8));
        let res = run_ss(jobs, 8, 2.0);
        let wide = res.outcomes.iter().find(|o| o.id == JobId(4)).unwrap();
        assert!(
            wide.first_start.secs() < 50_000,
            "wide job got service via preemption"
        );
        assert_eq!(res.preemptions, 4, "all four narrow victims suspended");
        // All victims eventually resume and finish.
        assert_eq!(res.outcomes.len(), 5);
    }

    #[test]
    fn reentry_reclaims_exact_processors_by_preemption() {
        // j0 (all 8 procs, 2000 s) is preempted at the t=1260 tick by j1
        // (6 procs, est 1200: xfactor (1250+1200)/1200 ≈ 2.04 ≥ SF=2; the
        // 8-proc victim passes the width rule, 8 ≤ 2×6). In the same tick
        // j2 (2 procs, est 50000, arrived 1255, frozen xfactor ≈ 1.0001)
        // starts on the two processors j1 left over — squatting on part of
        // j0's original set. After j1 completes (t=2460), j0 still cannot
        // re-enter until its own xfactor reaches 2 × 1.0001, i.e. wait ≥
        // ~2000 s past its suspension: the t=3300 tick. Re-entry then
        // suspends the squatter and restores j0 on its exact processors.
        let jobs = vec![
            Job::new(0, 0, 2_000, 2_000, 8),
            Job::new(1, 10, 1_200, 1_200, 6),
            Job::new(2, 1_255, 50_000, 50_000, 2),
        ];
        let res = run_ss(jobs, 8, 2.0);
        assert_eq!(res.outcomes.len(), 3);
        let j0 = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let j2 = res.outcomes.iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(j0.suspensions, 1);
        assert_eq!(j2.suspensions, 1, "re-entry suspended the squatter");
        // j0 resumed at 3300 with 740 s left (it had run [0, 1260)).
        assert_eq!(j0.completion.secs(), 3_300 + 740);
        // The squatter resumes once j0 is done.
        assert_eq!(j2.completion.secs(), 4_040 + (50_000 - (3_300 - 1_260)));
    }

    #[test]
    fn no_starvation_under_stream_of_short_jobs() {
        // A very long wide job plus a stream of short jobs: the long job's
        // growing xfactor protects it from endless preemption (each short
        // job must reach SF × its frozen priority), and it completes.
        let mut jobs = vec![Job::new(0, 0, 20_000, 20_000, 6)];
        for i in 0..40u32 {
            jobs.push(Job::new(1 + i, 100 + 500 * i as i64, 400, 400, 4));
        }
        let res = run_ss(jobs, 8, 2.0);
        assert_eq!(res.outcomes.len(), 41, "everyone finishes");
    }

    #[test]
    fn tss_limit_blocks_preemption_of_high_priority_victim() {
        // Prime the TSS limits with a completion giving the VL-Seq... use
        // static limits for determinism: category of the victim gets a
        // tiny average, so the victim becomes unpreemptible as soon as its
        // priority exceeds 1.5 × avg.
        let victim_cat = Category::classify(100_000, 8);
        let mut avgs = [f64::INFINITY; 16];
        avgs[victim_cat.index()] = 0.5; // limit = 0.75 < any xfactor (≥1)
        let cfg = SsConfig {
            sf: 2.0,
            width_restriction: true,
            migration: false,
            limits: Some(TssLimits::with_static_averages(avgs, 1.5)),
        };
        let jobs = vec![
            Job::new(0, 0, 100_000, 100_000, 8),
            Job::new(1, 1_000, 600, 600, 8),
        ];
        let res = Simulator::new(jobs, 8, Box::new(SelectiveSuspension::new(cfg))).run();
        assert_eq!(res.preemptions, 0, "limit shields the victim");
        let short = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(short.first_start.secs(), 100_000);
    }

    #[test]
    fn tss_behaves_like_ss_before_any_completion() {
        // Running-average limits are infinite until a completion lands, so
        // the first preemption happens exactly as under SS.
        let jobs = vec![
            Job::new(0, 0, 100_000, 100_000, 8),
            Job::new(1, 1_000, 600, 600, 8),
        ];
        let ss = run_ss(jobs.clone(), 8, 2.0);
        let tss = Simulator::new(jobs, 8, Box::new(SelectiveSuspension::tss(2.0))).run();
        let s = |r: &crate::sim::SimResult| {
            r.outcomes
                .iter()
                .find(|o| o.id == JobId(1))
                .unwrap()
                .first_start
        };
        assert_eq!(s(&ss), s(&tss));
    }

    #[test]
    fn migration_relaxes_reentry() {
        // j0 (all 8 procs) is preempted by j1; j2 (2 procs) squats on part
        // of j0's set. Under local preemption j0 must wait or preempt the
        // squatter; with migration it cannot help here (it needs 8 of 8),
        // so use a narrower j0: 6 procs. After suspension, 6 procs are
        // free elsewhere? Machine is 12: j0 on {0..5}; j1 (12p est 1200)
        // preempts everything at its tick; j2 (4p, long) then lands on
        // {0..3} when j1 finishes (higher xfactor than j0)... With
        // migration j0 simply restarts on the 8 free processors
        // {4..11} instead of waiting for {0..5}.
        let jobs = vec![
            Job::new(0, 0, 4_000, 4_000, 6),
            Job::new(1, 10, 1_200, 1_200, 12),
            Job::new(2, 1_255, 50_000, 50_000, 4),
        ];
        let mut local_cfg = SsConfig::ss(2.0);
        local_cfg.width_restriction = false; // let j1 (12p) evict j0 (6p)
        let mut mig_cfg = local_cfg.clone();
        mig_cfg.migration = true;
        let local = Simulator::new(
            jobs.clone(),
            12,
            Box::new(SelectiveSuspension::new(local_cfg)),
        )
        .run();
        let migr = Simulator::new(jobs, 12, Box::new(SelectiveSuspension::new(mig_cfg))).run();
        let j0_local = local.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let j0_migr = migr.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        assert!(
            j0_migr.completion <= j0_local.completion,
            "migration can only help the suspended job: migr {} vs local {}",
            j0_migr.completion.secs(),
            j0_local.completion.secs()
        );
        assert_eq!(migr.dropped_actions, 0);
        assert_eq!(migr.outcomes.len(), 3);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(SelectiveSuspension::ss(2.0).name(), "SS (SF=2)");
        assert_eq!(SelectiveSuspension::tss(1.5).name(), "TSS (SF=1.5)");
        let mut cfg = SsConfig::ss(5.0);
        cfg.width_restriction = false;
        assert!(SelectiveSuspension::new(cfg)
            .name()
            .contains("no width rule"));
        let mut cfg = SsConfig::ss(2.0);
        cfg.migration = true;
        assert!(SelectiveSuspension::new(cfg).name().contains("migration"));
    }
}
