//! Tunable Selective Suspension limits (Section IV-E).
//!
//! TSS "involves controlling the variance in the slowdowns and turnaround
//! times by associating a limit with each job. Preemption of a job is
//! disabled when its priority exceeds this limit. This limit is set to 1.5
//! times the average slowdown of the category that the job belongs to."
//!
//! The paper does not say how the per-category average is obtained; this
//! implementation supports both natural readings, compared by the
//! `ablation_tss_limit_source` bench:
//!
//! * **running averages** (default) — the mean bounded slowdown of jobs of
//!   the category that have completed *in this simulation so far*; a
//!   category with no completions yet imposes no limit (pure SS
//!   behaviour), and
//! * **static limits** — supplied from outside (e.g. the per-category
//!   averages of a prior NS run).
//!
//! Because the scheduler only knows the user estimate while a job runs,
//! categories here are keyed by *estimated* run time (and true width);
//! with accurate estimates this coincides with the paper's actual-runtime
//! categorization.

use sps_metrics::JobOutcome;
use sps_workload::Category;

/// Per-category preemption-disable limits for TSS.
#[derive(Clone, Debug)]
pub struct TssLimits {
    /// Limit = `multiplier ×` category average slowdown (paper: 1.5).
    multiplier: f64,
    sums: [f64; 16],
    counts: [u64; 16],
    static_limits: Option<[f64; 16]>,
    /// Completions required in a category before its running average is
    /// trusted. During a simulation's warm-up the first finishers are
    /// no-wait jobs whose slowdowns sit at 1.0; activating a limit of 1.5
    /// then would protect nearly every running job and strangle
    /// preemption entirely.
    min_samples: u64,
}

/// The paper's limit multiplier.
pub const DEFAULT_MULTIPLIER: f64 = 1.5;

/// Completions per category before a running-average limit engages.
pub const DEFAULT_MIN_SAMPLES: u64 = 25;

impl Default for TssLimits {
    fn default() -> Self {
        Self::new()
    }
}

impl TssLimits {
    /// Running-average limits with the paper's 1.5× multiplier.
    pub fn new() -> Self {
        Self::with_multiplier(DEFAULT_MULTIPLIER)
    }

    /// Running-average limits with a custom multiplier.
    pub fn with_multiplier(multiplier: f64) -> Self {
        assert!(multiplier > 0.0);
        TssLimits {
            multiplier,
            sums: [0.0; 16],
            counts: [0; 16],
            static_limits: None,
            min_samples: DEFAULT_MIN_SAMPLES,
        }
    }

    /// Fixed per-category average slowdowns (e.g. from an NS run); the
    /// limit is still `multiplier ×` the supplied average.
    pub fn with_static_averages(avgs: [f64; 16], multiplier: f64) -> Self {
        assert!(multiplier > 0.0);
        TssLimits {
            multiplier,
            sums: [0.0; 16],
            counts: [0; 16],
            static_limits: Some(avgs),
            min_samples: 0,
        }
    }

    /// Override the warm-up sample requirement (0 = trust immediately).
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Record a completion into the running averages.
    pub fn record(&mut self, outcome: &JobOutcome) {
        // Key by the scheduler-visible (estimate-based) category so the
        // limit lookup and the average use the same key space.
        let cat = Category::classify(outcome.estimate, outcome.procs);
        self.sums[cat.index()] += outcome.slowdown();
        self.counts[cat.index()] += 1;
    }

    /// The preemption-disable threshold for a job of `cat`: a running job
    /// whose suspension priority exceeds this cannot be preempted.
    /// Infinite (no protection) while the category average is unknown.
    pub fn limit_for(&self, cat: Category) -> f64 {
        if let Some(avgs) = &self.static_limits {
            return self.multiplier * avgs[cat.index()];
        }
        let i = cat.index();
        if self.counts[i] < self.min_samples.max(1) {
            f64::INFINITY
        } else {
            self.multiplier * self.sums[i] / self.counts[i] as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_simcore::SimTime;
    use sps_workload::Job;

    fn outcome(run: i64, procs: u32, wait: i64) -> JobOutcome {
        let job = Job::new(0, 0, run, run, procs);
        JobOutcome::new(&job, SimTime::new(wait), SimTime::new(wait + run), 0, 0)
    }

    #[test]
    fn unknown_category_has_no_limit() {
        let l = TssLimits::new();
        let cat = Category::classify(60, 1);
        assert!(l.limit_for(cat).is_infinite());
    }

    #[test]
    fn warmup_requires_min_samples() {
        let mut l = TssLimits::new().with_min_samples(3);
        let cat = Category::classify(100, 1);
        l.record(&outcome(100, 1, 100));
        l.record(&outcome(100, 1, 100));
        assert!(l.limit_for(cat).is_infinite(), "2 of 3 samples: still open");
        l.record(&outcome(100, 1, 100));
        assert!(l.limit_for(cat).is_finite(), "3rd sample engages the limit");
    }

    #[test]
    fn running_average_tracks_completions() {
        let mut l = TssLimits::new().with_min_samples(1);
        // Two VS-Seq completions with slowdowns 1 and 3 → average 2,
        // limit 3.
        l.record(&outcome(100, 1, 0));
        l.record(&outcome(100, 1, 200));
        let cat = Category::classify(100, 1);
        assert!((l.limit_for(cat) - 3.0).abs() < 1e-12);
        // Other categories unaffected.
        assert!(l.limit_for(Category::classify(10_000, 64)).is_infinite());
    }

    #[test]
    fn static_limits_ignore_recordings() {
        let mut avgs = [1.0f64; 16];
        let cat = Category::classify(60, 1);
        avgs[cat.index()] = 10.0;
        let mut l = TssLimits::with_static_averages(avgs, 1.5);
        l.record(&outcome(60, 1, 6_000)); // would skew a running average
        assert!((l.limit_for(cat) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_based_keying() {
        let mut l = TssLimits::new().with_min_samples(1);
        // A badly estimated short job (run 60, estimate 30000) is recorded
        // under the *estimated* (Very Long) category.
        let job = Job::new(0, 0, 60, 30_000, 1);
        let o = JobOutcome::new(&job, SimTime::new(0), SimTime::new(60), 0, 0);
        l.record(&o);
        assert!(l.limit_for(Category::classify(60, 1)).is_infinite());
        assert!(l.limit_for(Category::classify(30_000, 1)).is_finite());
    }
}
