//! Experiment driver: configuration → simulation → per-category report.
//!
//! One [`ExperimentConfig`] fully determines a run (machine, synthetic
//! trace seed, load factor, estimate model, overhead model, scheduler),
//! so every number in EXPERIMENTS.md is reproducible bit-for-bit. The
//! harness compares several schedulers on the *same* trace by varying only
//! [`ExperimentConfig::scheduler`]. [`run_many`] fans a batch of
//! configurations out over OS threads (simulations are independent and
//! CPU-bound).

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use sps_metrics::{CategoryReport, JobOutcome};
use sps_simcore::Secs;
use sps_telemetry::TelemetrySink;
use sps_trace::{DecodeError, Json, TraceSink};
use sps_workload::{
    ArrivalSpec, EstimateModel, Job, JobSource, OpenSource, SyntheticConfig, SystemPreset,
    TraceCache, TraceKey, TraceSource,
};

use crate::admission::AdmissionModel;
use crate::checkpoint::{CheckpointModel, PreemptionMode};
use crate::faults::{FaultModel, RecoveryPolicy};
use crate::overhead::OverheadModel;
use crate::policy::Policy;
use crate::sched::{
    Conservative, Easy, Fcfs, FlexBackfill, GangScheduling, ImmediateService, SelectiveSuspension,
};
use crate::sim::{SimResult, Simulator, DEFAULT_TICK_PERIOD};
use sps_simcore::Watchdog;

/// Which scheduler to run.
///
/// Every kind has a canonical spec string — `"fcfs"`, `"cons"`, `"easy"`,
/// `"flex:4"`, `"is"`, `"gang"`, `"ss:2.0"`, `"tss:1.5"` — produced by
/// [`fmt::Display`] and accepted by [`FromStr`], so the CLI, trace-file
/// headers, and config JSON all share one round-trippable grammar.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// First-come-first-served, no backfilling.
    Fcfs,
    /// Conservative backfilling.
    Conservative,
    /// Aggressive (EASY) backfilling — the paper's NS baseline.
    Easy,
    /// Backfilling with reservations for the first `depth` queued jobs
    /// (the EASY ↔ conservative spectrum).
    Flex {
        /// Number of protected queue positions.
        depth: usize,
    },
    /// Immediate Service (Chiang & Vernon).
    ImmediateService,
    /// Time-sliced gang scheduling (Ousterhout matrix, 10-minute
    /// quantum) — Section II's classical preemptive alternative.
    Gang,
    /// Selective Suspension with the given suspension factor.
    Ss {
        /// Suspension factor.
        sf: f64,
    },
    /// Tunable Selective Suspension (SS + per-category limits).
    Tss {
        /// Suspension factor.
        sf: f64,
    },
}

impl SchedulerKind {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match *self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Conservative => Box::<Conservative>::default(),
            SchedulerKind::Easy => Box::new(Easy),
            SchedulerKind::Flex { depth } => Box::new(FlexBackfill::new(depth)),
            SchedulerKind::ImmediateService => Box::new(ImmediateService::new()),
            SchedulerKind::Gang => Box::<GangScheduling>::default(),
            SchedulerKind::Ss { sf } => Box::new(SelectiveSuspension::ss(sf)),
            SchedulerKind::Tss { sf } => Box::new(SelectiveSuspension::tss(sf)),
        }
    }

    /// Short label for table columns.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::Fcfs => "FCFS".into(),
            SchedulerKind::Conservative => "Cons".into(),
            SchedulerKind::Easy => "NS".into(),
            SchedulerKind::Flex { depth } => format!("Flex-{depth}"),
            SchedulerKind::ImmediateService => "IS".into(),
            SchedulerKind::Gang => "Gang".into(),
            SchedulerKind::Ss { sf } => format!("SS {sf}"),
            SchedulerKind::Tss { sf } => format!("SF={sf} Tuned"),
        }
    }
}

/// Render a suspension factor so that integral values keep a decimal
/// point (`2` → `"2.0"`) — the canonical spec strings stay visibly
/// floating-point and re-parse to the same value.
fn fmt_sf(sf: f64) -> String {
    if sf.fract() == 0.0 {
        format!("{sf:.1}")
    } else {
        format!("{sf}")
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedulerKind::Fcfs => f.write_str("fcfs"),
            SchedulerKind::Conservative => f.write_str("cons"),
            SchedulerKind::Easy => f.write_str("easy"),
            SchedulerKind::Flex { depth } => write!(f, "flex:{depth}"),
            SchedulerKind::ImmediateService => f.write_str("is"),
            SchedulerKind::Gang => f.write_str("gang"),
            SchedulerKind::Ss { sf } => write!(f, "ss:{}", fmt_sf(sf)),
            SchedulerKind::Tss { sf } => write!(f, "tss:{}", fmt_sf(sf)),
        }
    }
}

/// A scheduler spec string that [`SchedulerKind::from_str`] rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedulerError {
    spec: String,
    reason: &'static str,
}

impl fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad scheduler spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParseSchedulerError {}

impl FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseSchedulerError {
            spec: spec.into(),
            reason,
        };
        let lower = spec.trim().to_ascii_lowercase();
        match lower.as_str() {
            "fcfs" => return Ok(SchedulerKind::Fcfs),
            "cons" | "conservative" => return Ok(SchedulerKind::Conservative),
            "easy" | "ns" => return Ok(SchedulerKind::Easy),
            "is" => return Ok(SchedulerKind::ImmediateService),
            "gang" => return Ok(SchedulerKind::Gang),
            _ => {}
        }
        if let Some(depth) = lower.strip_prefix("flex:") {
            let depth: usize = depth.parse().map_err(|_| err("depth must be an integer"))?;
            if depth == 0 {
                return Err(err("flex depth must be at least 1"));
            }
            return Ok(SchedulerKind::Flex { depth });
        }
        let (tuned, sf_text) = if let Some(rest) = lower.strip_prefix("ss:") {
            (false, rest)
        } else if let Some(rest) = lower.strip_prefix("tss:") {
            (true, rest)
        } else {
            return Err(err(
                "expected fcfs | cons | easy | flex:<depth> | is | gang | ss:<sf> | tss:<sf>",
            ));
        };
        let sf: f64 = sf_text
            .parse()
            .map_err(|_| err("suspension factor must be a number"))?;
        if !sf.is_finite() || sf < 1.0 {
            return Err(err("suspension factor must be a finite number ≥ 1"));
        }
        Ok(if tuned {
            SchedulerKind::Tss { sf }
        } else {
            SchedulerKind::Ss { sf }
        })
    }
}

/// Everything needed to reproduce one simulation.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Machine and calibrated job mix.
    pub system: SystemPreset,
    /// Trace length in jobs.
    pub n_jobs: usize,
    /// Trace RNG seed (same seed + system + load → same trace across
    /// schedulers).
    pub seed: u64,
    /// Load factor relative to the preset's baseline (Section VI).
    pub load_factor: f64,
    /// User-estimate model (Section V).
    pub estimates: EstimateModel,
    /// Suspension/restart overhead model (Section V-A).
    pub overhead: OverheadModel,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// Preemption-routine period, seconds (paper: one minute).
    pub tick_period: Secs,
    /// Failure injection (off by default; the simulation is bit-identical
    /// to a fault-free build when disabled).
    pub faults: FaultModel,
    /// Workload boundary: the closed synthetic trace
    /// ([`ArrivalSpec::Trace`], the default) or an unbounded open-system
    /// generator. Open specs run through
    /// [`RunBuilder`](crate::runner::RunBuilder) with a stopping condition.
    pub arrivals: ArrivalSpec,
    /// Admission control ([`AdmissionModel::none`] by default — every
    /// arrival is accepted and the rejection ledger stays empty).
    pub admission: AdmissionModel,
    /// Preemption continuum mode ([`PreemptionMode::InPlace`] by default,
    /// which reproduces the paper's suspend-in-place mechanics
    /// bit-for-bit).
    pub preemption: PreemptionMode,
    /// Checkpoint image cost model, consulted only when [`preemption`]
    /// checkpoints.
    ///
    /// [`preemption`]: ExperimentConfig::preemption
    pub checkpoint: CheckpointModel,
}

/// A structurally invalid [`ExperimentConfig`], caught by
/// [`ExperimentConfig::validate`] before any simulation work starts.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `load_factor` must be a finite number greater than zero.
    BadLoadFactor(f64),
    /// `tick_period` must be at least one second.
    ZeroTickPeriod,
    /// `n_jobs` must be at least one.
    NoJobs,
    /// The fault model is inconsistent (reason attached).
    BadFaults(&'static str),
    /// A sweep grid axis is empty (which axis is attached).
    EmptyGrid(&'static str),
    /// The arrival spec is inconsistent (reason attached).
    BadArrivals(String),
    /// The checkpoint model is unusable for the requested preemption mode
    /// (reason attached).
    BadCheckpoint(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::BadLoadFactor(v) => {
                write!(f, "load_factor must be finite and > 0, got {v}")
            }
            ConfigError::ZeroTickPeriod => f.write_str("tick_period must be at least 1 second"),
            ConfigError::NoJobs => f.write_str("n_jobs must be at least 1"),
            ConfigError::BadFaults(reason) => write!(f, "bad fault model: {reason}"),
            ConfigError::EmptyGrid(axis) => write!(f, "sweep grid axis '{axis}' is empty"),
            ConfigError::BadArrivals(ref reason) => write!(f, "bad arrival spec: {reason}"),
            ConfigError::BadCheckpoint(reason) => write!(f, "bad checkpoint model: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExperimentConfig {
    /// Baseline configuration: preset defaults, accurate estimates, no
    /// overhead, load factor 1.
    pub fn new(system: SystemPreset, scheduler: SchedulerKind) -> Self {
        ExperimentConfig {
            system,
            n_jobs: system.default_jobs,
            seed: 42,
            load_factor: 1.0,
            estimates: EstimateModel::Accurate,
            overhead: OverheadModel::None,
            scheduler,
            tick_period: DEFAULT_TICK_PERIOD,
            faults: FaultModel::none(),
            arrivals: ArrivalSpec::Trace,
            admission: AdmissionModel::none(),
            preemption: PreemptionMode::InPlace,
            checkpoint: CheckpointModel::default(),
        }
    }

    /// Check the configuration for values that would make the simulation
    /// meaningless (or hang the trace generator) before running it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.load_factor.is_finite() || self.load_factor <= 0.0 {
            return Err(ConfigError::BadLoadFactor(self.load_factor));
        }
        if self.tick_period < 1 {
            return Err(ConfigError::ZeroTickPeriod);
        }
        if self.n_jobs == 0 {
            return Err(ConfigError::NoJobs);
        }
        if let Some(mtbf) = self.faults.mtbf {
            if mtbf < 1 {
                return Err(ConfigError::BadFaults("mtbf must be at least 1 second"));
            }
            if self.faults.mttr < 1 {
                return Err(ConfigError::BadFaults("mttr must be at least 1 second"));
            }
        }
        if !(0.0..=1.0).contains(&self.faults.job_crash) {
            return Err(ConfigError::BadFaults(
                "job_crash must be a probability in [0, 1]",
            ));
        }
        self.arrivals.validate().map_err(ConfigError::BadArrivals)?;
        if self.preemption.checkpoints() && !self.checkpoint.valid() {
            return Err(ConfigError::BadCheckpoint(
                "rate must be a positive finite MB/s and interval at least 1 second",
            ));
        }
        Ok(())
    }

    /// Builder-style mutators.
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// Set the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the load factor.
    pub fn with_load_factor(mut self, f: f64) -> Self {
        self.load_factor = f;
        self
    }

    /// Set the estimate model.
    pub fn with_estimates(mut self, e: EstimateModel) -> Self {
        self.estimates = e;
        self
    }

    /// Set the overhead model.
    pub fn with_overhead(mut self, o: OverheadModel) -> Self {
        self.overhead = o;
        self
    }

    /// Set the scheduler under test.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the preemption-routine period in seconds.
    pub fn with_tick_period(mut self, secs: Secs) -> Self {
        self.tick_period = secs;
        self
    }

    /// Set the failure-injection model.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Switch to a different machine/mix preset. The trace length stays
    /// as configured — call [`ExperimentConfig::with_jobs`] afterwards if
    /// the new preset's default is wanted.
    pub fn with_system(mut self, system: SystemPreset) -> Self {
        self.system = system;
        self
    }

    /// Set the workload boundary (closed trace or open generator).
    pub fn with_arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Set the admission-control model.
    pub fn with_admission(mut self, admission: AdmissionModel) -> Self {
        self.admission = admission;
        self
    }

    /// Set the preemption mode (the checkpoint cost model stays as
    /// configured; see [`ExperimentConfig::with_checkpoint`]).
    pub fn with_preemption(mut self, mode: PreemptionMode) -> Self {
        self.preemption = mode;
        self
    }

    /// Set the checkpoint image cost model.
    pub fn with_checkpoint(mut self, model: CheckpointModel) -> Self {
        self.checkpoint = model;
        self
    }

    /// The offered load an open-system generator targets when the arrival
    /// spec doesn't pin one: the preset's calibrated baseline scaled by
    /// [`ExperimentConfig::load_factor`] — the same product the closed
    /// trace generator aims at.
    pub fn target_load(&self) -> f64 {
        self.system.base_load * self.load_factor
    }

    /// The configuration's [`JobSource`]: a replay of the finite synthetic
    /// trace for [`ArrivalSpec::Trace`], otherwise the seeded open-system
    /// generator. This is the seam [`crate::runner::RunBuilder`] feeds the
    /// simulator through.
    pub fn job_source(&self) -> Box<dyn JobSource> {
        match self.open_source() {
            Some(open) => Box::new(open),
            None => Box::new(TraceSource::new(self.trace())),
        }
    }

    /// The open-system generator for this configuration, or `None` in
    /// closed trace mode.
    pub fn open_source(&self) -> Option<OpenSource> {
        self.arrivals
            .build(self.system, self.seed, self.target_load(), self.estimates)
    }

    /// Generate this experiment's trace (scheduler-independent).
    pub fn trace(&self) -> Vec<Job> {
        let mut jobs = SyntheticConfig::new(self.system, self.seed)
            .with_jobs(self.n_jobs)
            .with_load_factor(self.load_factor)
            .generate();
        self.estimates.apply(&mut jobs, self.seed.wrapping_add(1));
        jobs
    }

    /// The cache key of this experiment's trace: everything trace
    /// generation depends on, and nothing the scheduler side varies.
    pub fn trace_key(&self) -> TraceKey {
        TraceKey::new(
            self.system,
            self.n_jobs,
            self.seed,
            self.load_factor,
            &self.estimates,
        )
    }

    /// This experiment's trace through a [`TraceCache`]: generated on the
    /// first request for its [`TraceKey`], shared by pointer afterwards.
    /// An SF × scheduler grid over one workload generates it exactly once.
    pub fn trace_shared(&self, cache: &TraceCache) -> Arc<[Job]> {
        cache.get_or_generate(self.trace_key(), || self.trace())
    }

    /// Shared body of the run paths: simulate `jobs` under this
    /// configuration and fold the reports, reusing an existing `Arc` of
    /// the configuration instead of cloning it into the result.
    fn run_on(self: &Arc<Self>, jobs: Vec<Job>) -> RunResult {
        RunResult::from_sim(Arc::clone(self), self.simulate(jobs))
    }

    /// Simulate `jobs` under this configuration and return the raw
    /// [`SimResult`], with no per-category reports built. The sweep
    /// harness folds this straight into a fixed-size
    /// [`RunSummary`](crate::sweep::RunSummary); building (and sorting)
    /// three reports per run just to discard them would dominate the
    /// aggregation cost at grid scale.
    pub fn simulate(&self, jobs: Vec<Job>) -> SimResult {
        let sim = Simulator::with_overhead_and_tick(
            jobs,
            self.system.procs,
            self.scheduler.build(),
            self.overhead,
            self.tick_period,
        )
        .with_faults(self.faults)
        .with_admission(self.admission)
        .with_preemption(self.preemption, self.checkpoint)
        .with_watchdog(Watchdog::generous());
        sim.run()
    }

    /// [`ExperimentConfig::simulate`] with a telemetry sink attached. The
    /// sink observes the run (metrics, spans, health detectors) without
    /// perturbing it — outcomes are bit-identical to the plain run — and
    /// stays with the caller for rendering afterwards. `SimResult::health`
    /// carries the detector roll-up when the sink tracks health.
    pub fn simulate_instrumented<T: TelemetrySink>(
        &self,
        jobs: Vec<Job>,
        telemetry: &mut T,
    ) -> SimResult {
        let sim = Simulator::with_overhead_and_tick(
            jobs,
            self.system.procs,
            self.scheduler.build(),
            self.overhead,
            self.tick_period,
        )
        .with_telemetry(telemetry)
        .with_faults(self.faults)
        .with_admission(self.admission)
        .with_preemption(self.preemption, self.checkpoint)
        .with_watchdog(Watchdog::generous());
        sim.run()
    }

    /// [`ExperimentConfig::run`] with a telemetry sink attached.
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().telemetry(&mut tel).run()` — one builder replaces the \
                per-combination entry points"
    )]
    pub fn run_instrumented<T: TelemetrySink>(&self, telemetry: &mut T) -> RunResult {
        self.runner().telemetry(telemetry).run()
    }

    /// Start a [`RunBuilder`](crate::runner::RunBuilder) for this
    /// configuration — the single entry point behind which the historical
    /// `run`/`run_traced`/`run_instrumented` combinations collapsed.
    /// Attach sinks, an explicit [`JobSource`], a stopping condition, or a
    /// warmup window, then call
    /// [`run()`](crate::runner::RunBuilder::run) or
    /// [`simulate()`](crate::runner::RunBuilder::simulate).
    pub fn runner(&self) -> crate::runner::RunBuilder {
        crate::runner::RunBuilder::new(Arc::new(self.clone()))
    }

    /// Run the simulation and aggregate reports.
    ///
    /// The simulator runs under a generous watchdog: a policy bug that
    /// livelocks the event loop surfaces as [`RunStatus::Aborted`] with
    /// partial metrics instead of hanging the process.
    ///
    /// [`RunStatus::Aborted`]: crate::sim::RunStatus::Aborted
    pub fn run(&self) -> RunResult {
        let cfg = Arc::new(self.clone());
        let jobs = cfg.trace();
        cfg.run_on(jobs)
    }

    /// [`ExperimentConfig::run`] against a pre-generated shared trace
    /// (see [`ExperimentConfig::trace_shared`]); the per-run copy is a
    /// flat memcpy of the job array instead of a full regeneration.
    pub fn run_shared(self: &Arc<Self>, trace: &Arc<[Job]>) -> RunResult {
        debug_assert_eq!(trace.len(), self.n_jobs, "trace matches the config");
        self.run_on(trace.to_vec())
    }

    /// [`ExperimentConfig::run`] preceded by [`ExperimentConfig::validate`].
    pub fn run_checked(&self) -> Result<RunResult, ConfigError> {
        self.validate()?;
        Ok(self.run())
    }

    /// Run the simulation while streaming trace records into `sink`.
    ///
    /// The first record is a [`TraceRecord::Header`] embedding this
    /// configuration as JSON, so the run is reproducible from the log
    /// alone: `ExperimentConfig::from_json(header.config)` rebuilds it.
    #[deprecated(
        since = "0.2.0",
        note = "use `cfg.runner().trace_sink(&mut sink).run()` — one builder replaces the \
                per-combination entry points"
    )]
    pub fn run_traced<S: TraceSink>(&self, sink: &mut S) -> RunResult {
        self.runner().trace_sink(sink).run()
    }

    /// Encode as JSON (embedded in trace-file headers). The `faults` key
    /// only appears when failure injection is enabled, so fault-free logs
    /// are byte-identical to those of builds predating the fault model.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".into(), Json::Str(self.system.name.into())),
            ("n_jobs".into(), Json::Int(self.n_jobs as i64)),
            ("seed".into(), Json::Int(self.seed as i64)),
            ("load_factor".into(), Json::Num(self.load_factor)),
            ("estimates".into(), estimates_to_json(&self.estimates)),
            ("overhead".into(), overhead_to_json(&self.overhead)),
            ("scheduler".into(), Json::Str(self.scheduler.to_string())),
            ("tick_period".into(), Json::Int(self.tick_period)),
        ];
        if self.faults.enabled() {
            fields.push(("faults".into(), faults_to_json(&self.faults)));
        }
        // Open-system fields follow the `faults` convention: omitted at
        // their defaults, so closed-system logs stay byte-identical to
        // those of builds predating the open-system mode.
        if !self.arrivals.is_trace() {
            fields.push(("arrivals".into(), Json::Str(self.arrivals.to_string())));
        }
        if self.admission.enabled() {
            fields.push(("admission".into(), Json::Str(self.admission.to_string())));
        }
        // Preemption-continuum fields follow the same convention: omitted
        // under the default in-place mode, so continuum-off logs stay
        // byte-identical to those of builds predating the modes.
        if self.preemption != PreemptionMode::InPlace {
            fields.push((
                "preemption".into(),
                Json::Str(self.preemption.name().into()),
            ));
            fields.push(("checkpoint".into(), checkpoint_to_json(&self.checkpoint)));
        }
        Json::Obj(fields)
    }

    /// Decode a configuration previously encoded with
    /// [`ExperimentConfig::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let name = json
            .get("system")
            .and_then(Json::as_str)
            .ok_or(DecodeError::Missing("system"))?;
        let system = SystemPreset::by_name(name).ok_or(DecodeError::Bad("system"))?;
        let scheduler: SchedulerKind = json
            .get("scheduler")
            .and_then(Json::as_str)
            .ok_or(DecodeError::Missing("scheduler"))?
            .parse()
            .map_err(|_| DecodeError::Bad("scheduler"))?;
        let n_jobs = json
            .get("n_jobs")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("n_jobs"))?;
        let seed = json
            .get("seed")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("seed"))?;
        let load_factor = json
            .get("load_factor")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("load_factor"))?;
        let tick_period = json
            .get("tick_period")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("tick_period"))?;
        if n_jobs < 1 || tick_period < 1 || !load_factor.is_finite() || load_factor <= 0.0 {
            return Err(DecodeError::Bad("config"));
        }
        Ok(ExperimentConfig {
            system,
            n_jobs: n_jobs as usize,
            seed: seed as u64,
            load_factor,
            estimates: estimates_from_json(
                json.get("estimates")
                    .ok_or(DecodeError::Missing("estimates"))?,
            )?,
            overhead: overhead_from_json(
                json.get("overhead")
                    .ok_or(DecodeError::Missing("overhead"))?,
            )?,
            scheduler,
            tick_period,
            faults: match json.get("faults") {
                Some(f) => faults_from_json(f)?,
                None => FaultModel::none(),
            },
            arrivals: match json.get("arrivals") {
                Some(a) => a
                    .as_str()
                    .ok_or(DecodeError::Bad("arrivals"))?
                    .parse()
                    .map_err(|_| DecodeError::Bad("arrivals"))?,
                None => ArrivalSpec::Trace,
            },
            admission: match json.get("admission") {
                Some(a) => a
                    .as_str()
                    .ok_or(DecodeError::Bad("admission"))?
                    .parse()
                    .map_err(|_| DecodeError::Bad("admission"))?,
                None => AdmissionModel::none(),
            },
            preemption: match json.get("preemption") {
                Some(p) => p
                    .as_str()
                    .and_then(PreemptionMode::from_name)
                    .ok_or(DecodeError::Bad("preemption"))?,
                None => PreemptionMode::InPlace,
            },
            checkpoint: match json.get("checkpoint") {
                Some(c) => checkpoint_from_json(c)?,
                None => CheckpointModel::default(),
            },
        })
    }
}

fn checkpoint_to_json(m: &CheckpointModel) -> Json {
    Json::Obj(vec![
        ("mb_per_sec".into(), Json::Num(m.mb_per_sec)),
        ("interval".into(), Json::Int(m.interval)),
        ("contention".into(), Json::Bool(m.contention)),
    ])
}

fn checkpoint_from_json(json: &Json) -> Result<CheckpointModel, DecodeError> {
    let mb_per_sec = json
        .get("mb_per_sec")
        .and_then(Json::as_f64)
        .ok_or(DecodeError::Missing("mb_per_sec"))?;
    let interval = json
        .get("interval")
        .and_then(Json::as_i64)
        .ok_or(DecodeError::Missing("interval"))?;
    let contention = match json.get("contention") {
        Some(c) => c.as_bool().ok_or(DecodeError::Bad("contention"))?,
        None => false,
    };
    let model = CheckpointModel {
        mb_per_sec,
        interval,
        contention,
    };
    if !model.valid() {
        return Err(DecodeError::Bad("checkpoint"));
    }
    Ok(model)
}

fn faults_to_json(m: &FaultModel) -> Json {
    let mut fields = Vec::new();
    if let Some(mtbf) = m.mtbf {
        fields.push(("mtbf".into(), Json::Int(mtbf)));
        fields.push(("mttr".into(), Json::Int(m.mttr)));
    }
    if m.job_crash > 0.0 {
        fields.push(("job_crash".into(), Json::Num(m.job_crash)));
    }
    fields.push(("recovery".into(), Json::Str(m.recovery.name().into())));
    fields.push(("fault_seed".into(), Json::Int(m.seed as i64)));
    Json::Obj(fields)
}

fn faults_from_json(json: &Json) -> Result<FaultModel, DecodeError> {
    let mut model = FaultModel::none();
    if let Some(mtbf) = json.get("mtbf") {
        let mtbf = mtbf.as_i64().ok_or(DecodeError::Bad("mtbf"))?;
        let mttr = json
            .get("mttr")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("mttr"))?;
        if mtbf < 1 || mttr < 1 {
            return Err(DecodeError::Bad("faults"));
        }
        model.mtbf = Some(mtbf);
        model.mttr = mttr;
    }
    if let Some(p) = json.get("job_crash") {
        let p = p.as_f64().ok_or(DecodeError::Bad("job_crash"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(DecodeError::Bad("job_crash"));
        }
        model.job_crash = p;
    }
    if let Some(r) = json.get("recovery") {
        let name = r.as_str().ok_or(DecodeError::Bad("recovery"))?;
        model.recovery = RecoveryPolicy::from_name(name).ok_or(DecodeError::Bad("recovery"))?;
    }
    if let Some(seed) = json.get("fault_seed") {
        model.seed = seed.as_i64().ok_or(DecodeError::Bad("fault_seed"))? as u64;
    }
    Ok(model)
}

fn estimates_to_json(e: &EstimateModel) -> Json {
    match *e {
        EstimateModel::Accurate => Json::Obj(vec![("model".into(), Json::Str("accurate".into()))]),
        EstimateModel::Mixture {
            well_fraction,
            max_factor,
        } => Json::Obj(vec![
            ("model".into(), Json::Str("mixture".into())),
            ("well_fraction".into(), Json::Num(well_fraction)),
            ("max_factor".into(), Json::Num(max_factor)),
        ]),
        EstimateModel::RoundedMixture {
            well_fraction,
            max_factor,
        } => Json::Obj(vec![
            ("model".into(), Json::Str("rounded_mixture".into())),
            ("well_fraction".into(), Json::Num(well_fraction)),
            ("max_factor".into(), Json::Num(max_factor)),
        ]),
    }
}

fn estimates_from_json(json: &Json) -> Result<EstimateModel, DecodeError> {
    let model = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or(DecodeError::Missing("model"))?;
    let fractions = || -> Result<(f64, f64), DecodeError> {
        let well = json
            .get("well_fraction")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("well_fraction"))?;
        let max = json
            .get("max_factor")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("max_factor"))?;
        if !(0.0..=1.0).contains(&well) || !max.is_finite() || max <= 1.0 {
            return Err(DecodeError::Bad("estimates"));
        }
        Ok((well, max))
    };
    match model {
        "accurate" => Ok(EstimateModel::Accurate),
        "mixture" => {
            let (well_fraction, max_factor) = fractions()?;
            Ok(EstimateModel::Mixture {
                well_fraction,
                max_factor,
            })
        }
        "rounded_mixture" => {
            let (well_fraction, max_factor) = fractions()?;
            Ok(EstimateModel::RoundedMixture {
                well_fraction,
                max_factor,
            })
        }
        _ => Err(DecodeError::Bad("model")),
    }
}

fn overhead_to_json(o: &OverheadModel) -> Json {
    match *o {
        OverheadModel::None => Json::Obj(vec![("model".into(), Json::Str("none".into()))]),
        OverheadModel::MemoryDrain { mb_per_sec } => Json::Obj(vec![
            ("model".into(), Json::Str("memory_drain".into())),
            ("mb_per_sec".into(), Json::Num(mb_per_sec)),
        ]),
    }
}

fn overhead_from_json(json: &Json) -> Result<OverheadModel, DecodeError> {
    let model = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or(DecodeError::Missing("model"))?;
    match model {
        "none" => Ok(OverheadModel::None),
        "memory_drain" => {
            let mb_per_sec = json
                .get("mb_per_sec")
                .and_then(Json::as_f64)
                .ok_or(DecodeError::Missing("mb_per_sec"))?;
            if !mb_per_sec.is_finite() || mb_per_sec <= 0.0 {
                return Err(DecodeError::Bad("mb_per_sec"));
            }
            Ok(OverheadModel::MemoryDrain { mb_per_sec })
        }
        _ => Err(DecodeError::Bad("model")),
    }
}

/// A finished experiment with its aggregations.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that produced it. Shared rather than owned: a
    /// sweep cell's five seed replicas point at five `Arc`s, not five
    /// deep clones, and `Deref` keeps `result.config.scheduler`-style
    /// field access working unchanged.
    pub config: Arc<ExperimentConfig>,
    /// Raw simulation result.
    pub sim: SimResult,
    /// Per-category report over all jobs.
    pub report: CategoryReport,
    /// Report restricted to well-estimated jobs (estimate ≤ 2× run).
    pub report_well: CategoryReport,
    /// Report restricted to badly estimated jobs.
    pub report_badly: CategoryReport,
}

impl RunResult {
    pub(crate) fn from_sim(config: Arc<ExperimentConfig>, sim: SimResult) -> Self {
        let report = CategoryReport::from_outcomes(&sim.outcomes);
        let report_well = CategoryReport::from_filtered(&sim.outcomes, JobOutcome::well_estimated);
        let report_badly = CategoryReport::from_filtered(&sim.outcomes, |o| !o.well_estimated());
        RunResult {
            config,
            sim,
            report,
            report_well,
            report_badly,
        }
    }

    /// Productive utilization, percent.
    pub fn utilization_pct(&self) -> f64 {
        self.sim.utilization * 100.0
    }
}

/// Why one configuration in a batch produced no result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration failed [`ExperimentConfig::validate`].
    Invalid(ConfigError),
    /// The simulation panicked on every attempt; the last payload message
    /// and the attempt count are attached. Other configurations in the
    /// batch are unaffected.
    Panicked {
        /// The last attempt's panic payload message.
        msg: String,
        /// How many times the configuration was tried (1 without retries).
        attempts: u32,
    },
    /// The batch's wall-clock budget ran out before this configuration
    /// started ([`crate::sweep::SweepSpec::with_wall_budget`]); the run
    /// was skipped so the rest of the grid could report partial results.
    BudgetExhausted,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(e) => write!(f, "invalid config: {e}"),
            RunError::Panicked { msg, attempts: 1 } => {
                write!(f, "simulation panicked: {msg}")
            }
            RunError::Panicked { msg, attempts } => {
                write!(f, "simulation panicked on all {attempts} attempts: {msg}")
            }
            RunError::BudgetExhausted => f.write_str("wall budget exhausted before the run"),
        }
    }
}

impl std::error::Error for RunError {}

/// Run a batch of experiments in parallel across OS threads. Results come
/// back in input order.
///
/// A configuration that fails validation or panics mid-simulation does not
/// take the batch down: every other configuration still completes, and
/// only then does this function **panic** with the first failure's
/// message — the lossy unwrap is deliberate and documented on
/// [`BatchRunner::run`](crate::runner::BatchRunner::run). Use
/// [`run_many_checked`] to receive per-configuration `Result`s instead.
#[deprecated(
    since = "0.2.0",
    note = "use `BatchRunner::new(configs).run()` — the builder also exposes thread count, \
            progress observation, and open-system stop conditions"
)]
pub fn run_many(configs: Vec<ExperimentConfig>) -> Vec<RunResult> {
    crate::runner::BatchRunner::new(configs).run()
}

/// Fallible batch runner: one `Result` per configuration, in input order.
/// Worker panics are caught per-configuration, so a poisoned config
/// reports [`RunError::Panicked`] while the rest of the batch completes.
///
/// Configurations that share a trace (same system, jobs, load, seed, and
/// estimate model — i.e. the same [`TraceKey`]) generate it once through a
/// batch-local [`TraceCache`] instead of once per run. Shorthand for
/// [`BatchRunner::new(configs).run_checked()`](crate::runner::BatchRunner).
pub fn run_many_checked(configs: Vec<ExperimentConfig>) -> Vec<Result<RunResult, RunError>> {
    crate::runner::BatchRunner::new(configs).run_checked()
}

/// The worker-thread count batch entry points use when the caller doesn't
/// pass one: the `SPS_THREADS` environment variable if set to a positive
/// integer, otherwise everything the OS reports.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// [`run_many_checked`] with an explicit worker count and runner — the
/// seam the sweep harness drives and the panic-isolation tests inject a
/// faulty runner through. Workers pull indices from a shared counter and
/// send `(index, result)` pairs over a channel; the caller's thread
/// reassembles them in input order. Panic messages are prefixed with the
/// offending configuration's scheduler spec so a poisoned cell in a large
/// grid is identifiable from the error alone.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn run_batch<T, F>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
{
    run_batch_observed(configs, threads, runner, |_, _| {})
}

/// [`run_batch`] with a progress observer. `observe(index, result)` runs
/// on the caller's thread, once per *terminal* outcome in completion order
/// — a panicked or invalid cell is observed exactly like a successful one,
/// so progress accounting (done counts, ETA math) never stalls on a failed
/// replication.
pub(crate) fn run_batch_observed<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
    observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    run_batch_retrying(configs, threads, 0, None, runner, observe)
}

/// [`run_batch_observed`] with bounded retry for panicked workers and an
/// optional wall-clock deadline. A configuration whose runner panics is
/// retried up to `retries` more times (linear 25 ms backoff between
/// attempts, on the worker thread) before surfacing [`RunError::Panicked`]
/// with the attempt count. A deterministic panic still fails after
/// `retries + 1` attempts; a flaky one — OOM pressure, a poisoned
/// thread-local, anything environmental — no longer voids its cell in a
/// mega-sweep.
///
/// When `deadline` is set, a configuration whose turn comes up after the
/// deadline is skipped with [`RunError::BudgetExhausted`] instead of run:
/// the batch drains gracefully and the caller aggregates whatever
/// completed in time. In-flight runs are not interrupted here — the sweep
/// harness additionally caps their per-run watchdog to the remaining
/// budget.
pub(crate) fn run_batch_retrying<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    retries: u32,
    deadline: Option<std::time::Instant>,
    runner: F,
    mut observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    let configs: Vec<Arc<ExperimentConfig>> = configs.into_iter().map(Arc::new).collect();
    let n = configs.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<T, RunError>)>();
    let configs_ref = &configs;
    let next_ref = &next;
    let runner_ref = &runner;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(n) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cfg = &configs_ref[i];
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    if tx.send((i, Err(RunError::BudgetExhausted))).is_err() {
                        break;
                    }
                    continue;
                }
                let result = match cfg.validate() {
                    Err(e) => Err(RunError::Invalid(e)),
                    Ok(()) => {
                        let mut attempts = 0u32;
                        loop {
                            attempts += 1;
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                runner_ref(cfg)
                            })) {
                                Ok(v) => break Ok(v),
                                Err(payload) => {
                                    let msg =
                                        format!("[{}] {}", cfg.scheduler, panic_message(&*payload));
                                    if attempts > retries {
                                        break Err(RunError::Panicked { msg, attempts });
                                    }
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        25 * attempts as u64,
                                    ));
                                }
                            }
                        }
                    }
                };
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the receive loop ends once every worker is done
        let mut results: Vec<Option<Result<T, RunError>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            observe(i, &r);
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every experiment ran"))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler)
            .with_jobs(300)
            .with_seed(7)
    }

    #[test]
    fn trace_is_scheduler_independent() {
        let a = small(SchedulerKind::Easy).trace();
        let b = small(SchedulerKind::Ss { sf: 2.0 }).trace();
        assert_eq!(a, b);
    }

    #[test]
    fn run_produces_full_reports() {
        let r = small(SchedulerKind::Easy).run();
        assert_eq!(r.report.overall.count, 300);
        assert_eq!(
            r.report_well.overall.count + r.report_badly.overall.count,
            300,
            "estimate split partitions the trace"
        );
        assert!(r.sim.utilization > 0.0 && r.sim.utilization <= 1.0);
        assert_eq!(r.sim.preemptions, 0, "NS never suspends");
    }

    #[test]
    fn estimate_split_matches_model() {
        let cfg = small(SchedulerKind::Easy).with_estimates(EstimateModel::Mixture {
            well_fraction: 0.5,
            max_factor: 30.0,
        });
        let r = cfg.run();
        assert!(r.report_well.overall.count > 60);
        assert!(r.report_badly.overall.count > 60);
    }

    #[test]
    #[allow(deprecated)] // deliberately covers the `run_many` shim
    fn run_many_matches_sequential_and_keeps_order() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Ss { sf: 2.0 }),
            small(SchedulerKind::Fcfs),
        ];
        let parallel = run_many(configs.clone());
        for (cfg, par) in configs.iter().zip(&parallel) {
            let seq = cfg.run();
            assert_eq!(par.sim.policy, seq.sim.policy);
            assert_eq!(par.report.overall.count, seq.report.overall.count);
            assert!(
                (par.report.overall.mean_slowdown - seq.report.overall.mean_slowdown).abs() < 1e-12
            );
        }
        assert_eq!(parallel[0].sim.policy, "NS (EASY)");
        assert_eq!(parallel[2].sim.policy, "FCFS");
    }

    #[test]
    fn run_many_keeps_order_with_more_threads_than_work() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let results = run_batch(configs, 16, |cfg| cfg.run());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        assert_eq!(results[1].as_ref().unwrap().sim.policy, "FCFS");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = small(SchedulerKind::Easy);
        assert_eq!(ok.validate(), Ok(()));
        assert!(matches!(
            ok.clone().with_load_factor(f64::NAN).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert!(matches!(
            ok.clone().with_load_factor(-0.5).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert!(matches!(
            ok.clone().with_load_factor(0.0).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert_eq!(
            ok.clone().with_tick_period(0).validate(),
            Err(ConfigError::ZeroTickPeriod)
        );
        assert_eq!(ok.clone().with_jobs(0).validate(), Err(ConfigError::NoJobs));
        let mut bad_faults = ok.clone();
        bad_faults.faults.job_crash = 1.5;
        assert!(matches!(
            bad_faults.validate(),
            Err(ConfigError::BadFaults(_))
        ));
        assert!(ok.clone().with_load_factor(f64::NAN).run_checked().is_err());
    }

    #[test]
    fn run_many_checked_reports_invalid_configs_in_place() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Fcfs),
        ];
        let results = run_many_checked(configs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(RunError::Invalid(ConfigError::NoJobs))
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn observer_sees_every_terminal_outcome_including_panics() {
        // Progress accounting must count panicked and invalid cells like
        // successes — an observer that only saw Ok results would stall
        // its done counter (and ETA) on the first failed replication.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let mut seen = Vec::new();
        let results = run_batch_observed(
            configs,
            2,
            |cfg| {
                if cfg.seed == 777 {
                    panic!("injected failure for seed 777");
                }
                cfg.run()
            },
            |i, r| seen.push((i, r.is_err())),
        );
        assert_eq!(results.len(), 4);
        assert_eq!(seen.len(), 4, "one observation per terminal outcome");
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, false), (1, true), (2, true), (3, false)],
            "panicked and invalid cells are observed exactly like successes"
        );
    }

    #[test]
    fn worker_panic_does_not_kill_the_batch() {
        // A runner that blows up on one specific configuration: the other
        // configurations must still produce results, in order.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let results = run_batch(configs, 2, |cfg| {
            if cfg.seed == 777 {
                panic!("injected failure for seed 777");
            }
            cfg.run()
        });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        match &results[1] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert!(msg.contains("injected failure"), "got {msg:?}");
                assert_eq!(*attempts, 1, "no retries were requested");
            }
            other => panic!("expected a caught panic, got {other:?}"),
        }
        assert_eq!(
            results[2].as_ref().unwrap().report.overall.count,
            300,
            "the batch kept running after the panic"
        );
    }

    #[test]
    fn retry_recovers_flaky_workers_and_counts_attempts() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let flaky_left = AtomicU32::new(2); // panic twice, then succeed
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Gang).with_seed(778),
        ];
        let results = run_batch_retrying(
            configs,
            1, // deterministic attempt interleaving
            3,
            None,
            |cfg| {
                if cfg.seed == 777
                    && flaky_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("transient failure");
                }
                if cfg.seed == 778 {
                    panic!("deterministic failure");
                }
                cfg.run()
            },
            |_, _| {},
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_ok(), "flaky cell must recover within budget");
        match &results[2] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert_eq!(*attempts, 4, "initial attempt plus three retries");
                assert!(msg.contains("deterministic failure"));
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        let shown = results[2].as_ref().unwrap_err().to_string();
        assert!(shown.contains("all 4 attempts"), "got {shown:?}");
    }

    #[test]
    fn expired_deadline_skips_runs_without_running_them() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let mut seen = 0usize;
        let results = run_batch_retrying(
            configs,
            2,
            0,
            Some(std::time::Instant::now()),
            |cfg| cfg.run(),
            |_, r| {
                assert!(matches!(r, Err(RunError::BudgetExhausted)));
                seen += 1;
            },
        );
        assert_eq!(seen, 2, "skipped runs still reach the observer");
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(RunError::BudgetExhausted))));
    }

    #[test]
    fn preemption_json_round_trips_and_is_omitted_when_in_place() {
        let plain = small(SchedulerKind::Ss { sf: 2.0 });
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("preemption") && !rendered.contains("checkpoint"),
            "in-place mode must not appear in config JSON: {rendered}"
        );
        for mode in [PreemptionMode::Checkpoint, PreemptionMode::Migrate] {
            let cfg = plain.clone().with_preemption(mode).with_checkpoint(
                CheckpointModel::paper()
                    .with_interval(900)
                    .with_contention(true),
            );
            let text = cfg.to_json().render();
            let back = ExperimentConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.preemption, cfg.preemption);
            assert_eq!(back.checkpoint, cfg.checkpoint);
        }
        for corrupt in [
            r#"{"mb_per_sec": 0.0, "interval": 600}"#,
            r#"{"interval": 600}"#,
            r#"{"mb_per_sec": 2.0, "interval": 0}"#,
        ] {
            let json = Json::parse(corrupt).unwrap();
            assert!(
                checkpoint_from_json(&json).is_err(),
                "{corrupt} must not parse"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_checkpoint_only_when_mode_needs_it() {
        let bad_model = CheckpointModel::paper().with_rate(-1.0);
        let inert = small(SchedulerKind::Easy).with_checkpoint(bad_model);
        assert_eq!(inert.validate(), Ok(()), "in-place mode ignores the model");
        let active = inert.with_preemption(PreemptionMode::Checkpoint);
        assert!(matches!(
            active.validate(),
            Err(ConfigError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn faults_json_round_trips_and_is_omitted_when_disabled() {
        let plain = small(SchedulerKind::Easy);
        assert!(
            plain.to_json().get("faults").is_none(),
            "disabled fault model must not appear in config JSON"
        );
        let cfg = plain.with_faults(
            FaultModel::proc_faults(200_000, 3_600, 9)
                .with_recovery(RecoveryPolicy::Remap)
                .with_job_crash(0.01),
        );
        let text = cfg.to_json().render();
        let back = ExperimentConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.faults, cfg.faults);
        for corrupt in [
            r#"{"mtbf": 0, "mttr": 60}"#,
            r#"{"mtbf": 100}"#,
            r#"{"job_crash": 2.0}"#,
            r#"{"recovery": "lottery"}"#,
        ] {
            let json = Json::parse(corrupt).unwrap();
            assert!(faults_from_json(&json).is_err(), "{corrupt} must not parse");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Ss { sf: 2.0 }.label(), "SS 2");
        assert_eq!(SchedulerKind::Tss { sf: 1.5 }.label(), "SF=1.5 Tuned");
        assert_eq!(SchedulerKind::Easy.label(), "NS");
    }

    #[test]
    fn spec_strings_are_canonical() {
        assert_eq!(SchedulerKind::Ss { sf: 2.0 }.to_string(), "ss:2.0");
        assert_eq!(SchedulerKind::Tss { sf: 1.5 }.to_string(), "tss:1.5");
        assert_eq!(SchedulerKind::Flex { depth: 4 }.to_string(), "flex:4");
        assert_eq!(
            "easy".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Easy
        );
        assert_eq!("ns".parse::<SchedulerKind>().unwrap(), SchedulerKind::Easy);
        assert_eq!(
            "conservative".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Conservative
        );
        assert_eq!(
            " TSS:2.5 ".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Tss { sf: 2.5 }
        );
        for bad in ["", "ss:", "ss:0.5", "ss:nan", "flex:0", "flex:x", "lottery"] {
            assert!(
                bad.parse::<SchedulerKind>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        // Property: parse(k.to_string()) == k over randomly drawn kinds.
        let mut rng = sps_simcore::SimRng::seed_from_u64(0x5EED);
        for _ in 0..2_000 {
            let sf = 1.0 + (rng.below(64_000) as f64) / 1_000.0;
            let kind = match rng.index(8) {
                0 => SchedulerKind::Fcfs,
                1 => SchedulerKind::Conservative,
                2 => SchedulerKind::Easy,
                3 => SchedulerKind::Flex {
                    depth: 1 + rng.index(200),
                },
                4 => SchedulerKind::ImmediateService,
                5 => SchedulerKind::Gang,
                6 => SchedulerKind::Ss { sf },
                _ => SchedulerKind::Tss { sf },
            };
            let spec = kind.to_string();
            assert_eq!(
                spec.parse::<SchedulerKind>().unwrap(),
                kind,
                "spec {spec:?}"
            );
        }
    }

    #[test]
    fn config_json_round_trips() {
        let cfg = ExperimentConfig::new(SDSC, SchedulerKind::Tss { sf: 2.0 })
            .with_jobs(1_234)
            .with_seed(99)
            .with_load_factor(1.3)
            .with_estimates(EstimateModel::Mixture {
                well_fraction: 0.4,
                max_factor: 30.0,
            })
            .with_overhead(OverheadModel::paper())
            .with_tick_period(30);
        let json = cfg.to_json();
        let text = json.render();
        let back = ExperimentConfig::from_json(&sps_trace::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.system.name, cfg.system.name);
        assert_eq!(back.n_jobs, cfg.n_jobs);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.load_factor, cfg.load_factor);
        assert_eq!(back.estimates, cfg.estimates);
        assert_eq!(back.overhead, cfg.overhead);
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.tick_period, cfg.tick_period);
        // Same trace from the round-tripped config.
        assert_eq!(back.trace(), cfg.trace());
    }

    #[test]
    fn builders_cover_every_field() {
        use sps_workload::traces::CTC;
        let cfg = ExperimentConfig::new(SDSC, SchedulerKind::Easy)
            .with_system(CTC)
            .with_scheduler(SchedulerKind::Ss { sf: 3.0 })
            .with_tick_period(120);
        assert_eq!(cfg.system.name, "CTC");
        assert_eq!(cfg.scheduler, SchedulerKind::Ss { sf: 3.0 });
        assert_eq!(cfg.tick_period, 120);
    }

    #[test]
    #[allow(deprecated)] // deliberately covers the `run_traced` shim
    fn run_traced_header_embeds_config() {
        use sps_trace::{MemorySink, TraceRecord};
        let cfg = small(SchedulerKind::Ss { sf: 2.0 }).with_jobs(120);
        let mut sink = MemorySink::new();
        let result = cfg.run_traced(&mut sink);
        assert_eq!(result.report.overall.count, 120);
        let records = sink.records();
        let TraceRecord::Header {
            version,
            scheduler,
            config,
        } = &records[0]
        else {
            panic!("first record must be the header");
        };
        assert_eq!(*version, sps_trace::TRACE_VERSION);
        assert_eq!(scheduler, "ss:2.0");
        let back = ExperimentConfig::from_json(config).unwrap();
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.seed, cfg.seed);
        // The log replays cleanly under the validator.
        let stats = sps_trace::validate_records(records, sps_trace::ReplayOptions::default())
            .expect("trace must validate");
        assert_eq!(stats.completions, 120);
    }
}
