//! Experiment driver: configuration → simulation → per-category report.
//!
//! One [`ExperimentConfig`] fully determines a run (machine, synthetic
//! trace seed, load factor, estimate model, overhead model, scheduler),
//! so every number in EXPERIMENTS.md is reproducible bit-for-bit. The
//! harness compares several schedulers on the *same* trace by varying only
//! [`ExperimentConfig::scheduler`]. [`run_many`] fans a batch of
//! configurations out over OS threads (simulations are independent and
//! CPU-bound).

use sps_metrics::{CategoryReport, JobOutcome};
use sps_simcore::Secs;
use sps_workload::{EstimateModel, Job, SyntheticConfig, SystemPreset};

use crate::overhead::OverheadModel;
use crate::policy::Policy;
use crate::sched::{
    Conservative, Easy, Fcfs, FlexBackfill, GangScheduling, ImmediateService, SelectiveSuspension,
};
use crate::sim::{SimResult, Simulator, DEFAULT_TICK_PERIOD};

/// Which scheduler to run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SchedulerKind {
    /// First-come-first-served, no backfilling.
    Fcfs,
    /// Conservative backfilling.
    Conservative,
    /// Aggressive (EASY) backfilling — the paper's NS baseline.
    Easy,
    /// Backfilling with reservations for the first `depth` queued jobs
    /// (the EASY ↔ conservative spectrum).
    Flex {
        /// Number of protected queue positions.
        depth: usize,
    },
    /// Immediate Service (Chiang & Vernon).
    ImmediateService,
    /// Time-sliced gang scheduling (Ousterhout matrix, 10-minute
    /// quantum) — Section II's classical preemptive alternative.
    Gang,
    /// Selective Suspension with the given suspension factor.
    Ss {
        /// Suspension factor.
        sf: f64,
    },
    /// Tunable Selective Suspension (SS + per-category limits).
    Tss {
        /// Suspension factor.
        sf: f64,
    },
}

impl SchedulerKind {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match *self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Conservative => Box::<Conservative>::default(),
            SchedulerKind::Easy => Box::new(Easy),
            SchedulerKind::Flex { depth } => Box::new(FlexBackfill::new(depth)),
            SchedulerKind::ImmediateService => Box::new(ImmediateService::new()),
            SchedulerKind::Gang => Box::<GangScheduling>::default(),
            SchedulerKind::Ss { sf } => Box::new(SelectiveSuspension::ss(sf)),
            SchedulerKind::Tss { sf } => Box::new(SelectiveSuspension::tss(sf)),
        }
    }

    /// Short label for table columns.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::Fcfs => "FCFS".into(),
            SchedulerKind::Conservative => "Cons".into(),
            SchedulerKind::Easy => "NS".into(),
            SchedulerKind::Flex { depth } => format!("Flex-{depth}"),
            SchedulerKind::ImmediateService => "IS".into(),
            SchedulerKind::Gang => "Gang".into(),
            SchedulerKind::Ss { sf } => format!("SS {sf}"),
            SchedulerKind::Tss { sf } => format!("SF={sf} Tuned"),
        }
    }
}

/// Everything needed to reproduce one simulation.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Machine and calibrated job mix.
    pub system: SystemPreset,
    /// Trace length in jobs.
    pub n_jobs: usize,
    /// Trace RNG seed (same seed + system + load → same trace across
    /// schedulers).
    pub seed: u64,
    /// Load factor relative to the preset's baseline (Section VI).
    pub load_factor: f64,
    /// User-estimate model (Section V).
    pub estimates: EstimateModel,
    /// Suspension/restart overhead model (Section V-A).
    pub overhead: OverheadModel,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// Preemption-routine period, seconds (paper: one minute).
    pub tick_period: Secs,
}

impl ExperimentConfig {
    /// Baseline configuration: preset defaults, accurate estimates, no
    /// overhead, load factor 1.
    pub fn new(system: SystemPreset, scheduler: SchedulerKind) -> Self {
        ExperimentConfig {
            system,
            n_jobs: system.default_jobs,
            seed: 42,
            load_factor: 1.0,
            estimates: EstimateModel::Accurate,
            overhead: OverheadModel::None,
            scheduler,
            tick_period: DEFAULT_TICK_PERIOD,
        }
    }

    /// Builder-style mutators.
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// Set the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the load factor.
    pub fn with_load_factor(mut self, f: f64) -> Self {
        self.load_factor = f;
        self
    }

    /// Set the estimate model.
    pub fn with_estimates(mut self, e: EstimateModel) -> Self {
        self.estimates = e;
        self
    }

    /// Set the overhead model.
    pub fn with_overhead(mut self, o: OverheadModel) -> Self {
        self.overhead = o;
        self
    }

    /// Generate this experiment's trace (scheduler-independent).
    pub fn trace(&self) -> Vec<Job> {
        let mut jobs = SyntheticConfig::new(self.system, self.seed)
            .with_jobs(self.n_jobs)
            .with_load_factor(self.load_factor)
            .generate();
        self.estimates.apply(&mut jobs, self.seed.wrapping_add(1));
        jobs
    }

    /// Run the simulation and aggregate reports.
    pub fn run(&self) -> RunResult {
        let jobs = self.trace();
        let sim = Simulator::with_overhead_and_tick(
            jobs,
            self.system.procs,
            self.scheduler.build(),
            self.overhead,
            self.tick_period,
        );
        RunResult::from_sim(self.clone(), sim.run())
    }
}

/// A finished experiment with its aggregations.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Raw simulation result.
    pub sim: SimResult,
    /// Per-category report over all jobs.
    pub report: CategoryReport,
    /// Report restricted to well-estimated jobs (estimate ≤ 2× run).
    pub report_well: CategoryReport,
    /// Report restricted to badly estimated jobs.
    pub report_badly: CategoryReport,
}

impl RunResult {
    fn from_sim(config: ExperimentConfig, sim: SimResult) -> Self {
        let report = CategoryReport::from_outcomes(&sim.outcomes);
        let report_well =
            CategoryReport::from_filtered(&sim.outcomes, JobOutcome::well_estimated);
        let report_badly =
            CategoryReport::from_filtered(&sim.outcomes, |o| !o.well_estimated());
        RunResult { config, sim, report, report_well, report_badly }
    }

    /// Productive utilization, percent.
    pub fn utilization_pct(&self) -> f64 {
        self.sim.utilization * 100.0
    }
}

/// Run a batch of experiments in parallel across OS threads. Results come
/// back in input order.
pub fn run_many(configs: Vec<ExperimentConfig>) -> Vec<RunResult> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut results: Vec<Option<RunResult>> = (0..configs.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let configs_ref = &configs;
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs_ref.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs_ref.len() {
                    break;
                }
                let result = configs_ref[i].run();
                let mut guard = results_mutex.lock().expect("no poisoned result writers");
                guard[i] = Some(result);
            });
        }
    });
    results.into_iter().map(|r| r.expect("every experiment ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler).with_jobs(300).with_seed(7)
    }

    #[test]
    fn trace_is_scheduler_independent() {
        let a = small(SchedulerKind::Easy).trace();
        let b = small(SchedulerKind::Ss { sf: 2.0 }).trace();
        assert_eq!(a, b);
    }

    #[test]
    fn run_produces_full_reports() {
        let r = small(SchedulerKind::Easy).run();
        assert_eq!(r.report.overall.count, 300);
        assert_eq!(
            r.report_well.overall.count + r.report_badly.overall.count,
            300,
            "estimate split partitions the trace"
        );
        assert!(r.sim.utilization > 0.0 && r.sim.utilization <= 1.0);
        assert_eq!(r.sim.preemptions, 0, "NS never suspends");
    }

    #[test]
    fn estimate_split_matches_model() {
        let cfg = small(SchedulerKind::Easy)
            .with_estimates(EstimateModel::Mixture { well_fraction: 0.5, max_factor: 30.0 });
        let r = cfg.run();
        assert!(r.report_well.overall.count > 60);
        assert!(r.report_badly.overall.count > 60);
    }

    #[test]
    fn run_many_matches_sequential_and_keeps_order() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Ss { sf: 2.0 }),
            small(SchedulerKind::Fcfs),
        ];
        let parallel = run_many(configs.clone());
        for (cfg, par) in configs.iter().zip(&parallel) {
            let seq = cfg.run();
            assert_eq!(par.sim.policy, seq.sim.policy);
            assert_eq!(par.report.overall.count, seq.report.overall.count);
            assert!((par.report.overall.mean_slowdown - seq.report.overall.mean_slowdown).abs() < 1e-12);
        }
        assert_eq!(parallel[0].sim.policy, "NS (EASY)");
        assert_eq!(parallel[2].sim.policy, "FCFS");
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Ss { sf: 2.0 }.label(), "SS 2");
        assert_eq!(SchedulerKind::Tss { sf: 1.5 }.label(), "SF=1.5 Tuned");
        assert_eq!(SchedulerKind::Easy.label(), "NS");
    }
}
