//! Pre-run structural validation of an [`ExperimentConfig`]:
//! [`ConfigError`] and [`ExperimentConfig::validate`]. Catching a
//! degenerate value here costs nothing; catching it mid-simulation costs
//! a hung trace generator or a meaningless result.

use std::fmt;

use super::ExperimentConfig;

/// A structurally invalid [`ExperimentConfig`], caught by
/// [`ExperimentConfig::validate`] before any simulation work starts.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `load_factor` must be a finite number greater than zero.
    BadLoadFactor(f64),
    /// `tick_period` must be at least one second.
    ZeroTickPeriod,
    /// `n_jobs` must be at least one.
    NoJobs,
    /// The fault model is inconsistent (reason attached).
    BadFaults(&'static str),
    /// A sweep grid axis is empty (which axis is attached).
    EmptyGrid(&'static str),
    /// The arrival spec is inconsistent (reason attached).
    BadArrivals(String),
    /// The checkpoint model is unusable for the requested preemption mode
    /// (reason attached).
    BadCheckpoint(&'static str),
    /// The speed spec is unusable (its rendered form attached).
    BadSpeed(String),
    /// Lean (outcome-streaming) mode conflicts with another knob
    /// (reason attached).
    BadLean(&'static str),
    /// A mega-sweep's SWF log is unusable (path and reason attached).
    BadSwf(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::BadLoadFactor(v) => {
                write!(f, "load_factor must be finite and > 0, got {v}")
            }
            ConfigError::ZeroTickPeriod => f.write_str("tick_period must be at least 1 second"),
            ConfigError::NoJobs => f.write_str("n_jobs must be at least 1"),
            ConfigError::BadFaults(reason) => write!(f, "bad fault model: {reason}"),
            ConfigError::EmptyGrid(axis) => write!(f, "sweep grid axis '{axis}' is empty"),
            ConfigError::BadArrivals(ref reason) => write!(f, "bad arrival spec: {reason}"),
            ConfigError::BadCheckpoint(reason) => write!(f, "bad checkpoint model: {reason}"),
            ConfigError::BadSpeed(ref spec) => {
                write!(f, "bad speed spec {spec:?}: factors must be finite and > 0")
            }
            ConfigError::BadLean(reason) => write!(f, "bad lean-mode combination: {reason}"),
            ConfigError::BadSwf(ref reason) => write!(f, "bad SWF log: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExperimentConfig {
    /// Check the configuration for values that would make the simulation
    /// meaningless (or hang the trace generator) before running it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.load_factor.is_finite() || self.load_factor <= 0.0 {
            return Err(ConfigError::BadLoadFactor(self.load_factor));
        }
        if self.tick_period < 1 {
            return Err(ConfigError::ZeroTickPeriod);
        }
        if self.n_jobs == 0 {
            return Err(ConfigError::NoJobs);
        }
        if let Some(mtbf) = self.faults.mtbf {
            if mtbf < 1 {
                return Err(ConfigError::BadFaults("mtbf must be at least 1 second"));
            }
            if self.faults.mttr < 1 {
                return Err(ConfigError::BadFaults("mttr must be at least 1 second"));
            }
        }
        if !(0.0..=1.0).contains(&self.faults.job_crash) {
            return Err(ConfigError::BadFaults(
                "job_crash must be a probability in [0, 1]",
            ));
        }
        self.arrivals.validate().map_err(ConfigError::BadArrivals)?;
        if self.preemption.checkpoints() && !self.checkpoint.valid() {
            return Err(ConfigError::BadCheckpoint(
                "rate must be a positive finite MB/s and interval at least 1 second",
            ));
        }
        if !self.speed.valid() {
            return Err(ConfigError::BadSpeed(self.speed.to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointModel, PreemptionMode};
    use crate::experiment::SchedulerKind;
    use sps_cluster::SpeedSpec;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler)
            .with_jobs(300)
            .with_seed(7)
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = small(SchedulerKind::Easy);
        assert_eq!(ok.validate(), Ok(()));
        assert!(matches!(
            ok.clone().with_load_factor(f64::NAN).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert!(matches!(
            ok.clone().with_load_factor(-0.5).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert!(matches!(
            ok.clone().with_load_factor(0.0).validate(),
            Err(ConfigError::BadLoadFactor(_))
        ));
        assert_eq!(
            ok.clone().with_tick_period(0).validate(),
            Err(ConfigError::ZeroTickPeriod)
        );
        assert_eq!(ok.clone().with_jobs(0).validate(), Err(ConfigError::NoJobs));
        let mut bad_faults = ok.clone();
        bad_faults.faults.job_crash = 1.5;
        assert!(matches!(
            bad_faults.validate(),
            Err(ConfigError::BadFaults(_))
        ));
        assert!(ok.clone().with_load_factor(f64::NAN).run_checked().is_err());
    }

    #[test]
    fn validate_rejects_bad_checkpoint_only_when_mode_needs_it() {
        let bad_model = CheckpointModel::paper().with_rate(-1.0);
        let inert = small(SchedulerKind::Easy).with_checkpoint(bad_model);
        assert_eq!(inert.validate(), Ok(()), "in-place mode ignores the model");
        let active = inert.with_preemption(PreemptionMode::Checkpoint);
        assert!(matches!(
            active.validate(),
            Err(ConfigError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn validate_rejects_degenerate_speed_specs() {
        let ok = small(SchedulerKind::Easy);
        assert_eq!(
            ok.clone()
                .with_speed("tiers:0.5x64+1.0x64".parse().unwrap())
                .validate(),
            Ok(())
        );
        for bad in [
            SpeedSpec::Uniform(0.0),
            SpeedSpec::Uniform(f64::NAN),
            SpeedSpec::Tiers(vec![]),
            SpeedSpec::Tiers(vec![(1.0, 0)]),
            SpeedSpec::Tiers(vec![(-2.0, 8)]),
        ] {
            assert!(
                matches!(
                    ok.clone().with_speed(bad.clone()).validate(),
                    Err(ConfigError::BadSpeed(_))
                ),
                "{bad:?} must be rejected"
            );
        }
    }
}
