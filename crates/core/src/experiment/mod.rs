//! Experiment driver: configuration → simulation → per-category report.
//!
//! One [`ExperimentConfig`] fully determines a run (machine, synthetic
//! trace seed, load factor, estimate model, overhead model, scheduler,
//! speed map), so every number in EXPERIMENTS.md is reproducible
//! bit-for-bit. The harness compares several schedulers on the *same*
//! trace by varying only [`ExperimentConfig::scheduler`];
//! [`BatchRunner`](crate::runner::BatchRunner) fans a batch of
//! configurations out over OS threads (simulations are independent and
//! CPU-bound).
//!
//! The module is split along its three concerns:
//!
//! * [`config`](self) — [`SchedulerKind`], [`ExperimentConfig`] and its
//!   JSON round-trip, [`RunResult`],
//! * `validate` — [`ConfigError`] and the pre-run structural checks,
//! * `builders` — the thread-pool batch seam ([`RunError`],
//!   [`default_threads`]) that `runner::BatchRunner` and the sweep
//!   harness drive.

mod builders;
mod config;
mod validate;

pub use builders::{default_threads, RunError, ShardStats, WorkerSpan};
pub use config::{ExperimentConfig, ParseSchedulerError, RunResult, SchedulerKind};
pub use validate::ConfigError;

pub(crate) use builders::{batch_workers, run_batch_retrying, run_batch_sharded, ShardBoard};
