//! The thread-pool batch seam: [`RunError`], [`default_threads`], and the
//! `run_batch*` family that [`BatchRunner`](crate::runner::BatchRunner)
//! and the sweep harness drive. Work is dispatched through per-worker
//! chunked deques with stealing (see [`StealQueues`]): each worker starts
//! with a contiguous slice of the batch — consecutive indices are
//! replications of the same cell, so the initial split maximizes trace
//! cache locality — and an idle worker steals the back half of a loaded
//! one's queue, so a shard of slow cells never serializes the tail of a
//! sweep. Per-configuration `catch_unwind` keeps one poisoned cell from
//! voiding a whole grid.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::{ConfigError, ExperimentConfig};

/// Per-worker shard counters for one batch: what each worker of the
/// work-stealing pool actually did. Collected on a [`ShardBoard`] when
/// the caller asks for one (the sweep and mega-sweep engines always do)
/// and surfaced through `SweepReport::workers` and the live
/// `SweepProgress::workers` snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Worker slot (0-based).
    pub worker: usize,
    /// Cells this worker ran to a successful result.
    pub cells_done: u64,
    /// Cells this worker ran to a terminal failure (panicked after
    /// retries, invalid, or skipped on an exhausted wall budget).
    pub cells_failed: u64,
    /// Pops that found the worker's own deque empty and scanned victims.
    pub steals_attempted: u64,
    /// Steal scans that came back with work.
    pub steals_succeeded: u64,
    /// Sum of own-queue depth sampled once per popped cell (after the
    /// pop); divide by `queue_depth_samples` for the mean.
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples taken.
    pub queue_depth_samples: u64,
    /// Wall time spent inside runner calls, nanoseconds.
    pub busy_ns: u64,
    /// Wall time spent outside runner calls (queue ops, stealing,
    /// waiting), nanoseconds.
    pub idle_ns: u64,
    /// Peak resident set (VmHWM, kB) observed after this worker's cells.
    /// Process-wide — the per-worker column shows *when* the high-water
    /// mark moved, not a private footprint.
    pub peak_rss_kb: u64,
}

impl ShardStats {
    /// Mean own-queue depth over the samples taken (0.0 with no samples).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Fraction of the worker's wall time spent inside runner calls.
    pub fn busy_frac(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// One cell execution on a worker lane, for timeline export: which worker
/// ran batch item `index`, when (relative to the board epoch), for how
/// long, and whether it succeeded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerSpan {
    /// Worker slot (0-based).
    pub worker: usize,
    /// Batch index of the cell.
    pub index: usize,
    /// Start, nanoseconds since the board epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Whether the cell produced an `Ok` result.
    pub ok: bool,
}

/// Bound on retained [`WorkerSpan`]s per batch: a mega-sweep has few
/// cells but a pathological grid could have millions, and the board must
/// stay O(small).
const WORKER_SPAN_CAP: usize = 65_536;

/// Shared telemetry board for one batch: per-worker [`ShardStats`] slots
/// plus the worker-lane span log, all keyed to one epoch so run-loop
/// phase spans recorded against the same epoch line up in the exported
/// timeline.
pub(crate) struct ShardBoard {
    epoch: Instant,
    shards: Vec<Mutex<ShardStats>>,
    spans: Mutex<Vec<WorkerSpan>>,
}

impl ShardBoard {
    pub(crate) fn new(workers: usize) -> Self {
        ShardBoard {
            epoch: Instant::now(),
            shards: (0..workers.max(1))
                .map(|w| {
                    Mutex::new(ShardStats {
                        worker: w,
                        ..ShardStats::default()
                    })
                })
                .collect(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The instant worker-span and (shared-epoch) phase-span timestamps
    /// are measured from.
    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Copy out the current per-worker counters (live snapshot — workers
    /// keep updating their slots).
    pub(crate) fn snapshot(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|m| *m.lock().expect("shard poisoned"))
            .collect()
    }

    /// Drain the worker-lane span log.
    pub(crate) fn take_spans(&self) -> Vec<WorkerSpan> {
        std::mem::take(&mut *self.spans.lock().expect("spans poisoned"))
    }

    fn push_span(&self, span: WorkerSpan) {
        let mut spans = self.spans.lock().expect("spans poisoned");
        if spans.len() < WORKER_SPAN_CAP {
            spans.push(span);
        }
    }
}

/// Why one configuration in a batch produced no result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration failed [`ExperimentConfig::validate`].
    Invalid(ConfigError),
    /// The simulation panicked on every attempt; the last payload message
    /// and the attempt count are attached. Other configurations in the
    /// batch are unaffected.
    Panicked {
        /// The last attempt's panic payload message.
        msg: String,
        /// How many times the configuration was tried (1 without retries).
        attempts: u32,
    },
    /// The batch's wall-clock budget ran out before this configuration
    /// started ([`crate::sweep::SweepSpec::with_wall_budget`]); the run
    /// was skipped so the rest of the grid could report partial results.
    BudgetExhausted,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(e) => write!(f, "invalid config: {e}"),
            RunError::Panicked { msg, attempts: 1 } => {
                write!(f, "simulation panicked: {msg}")
            }
            RunError::Panicked { msg, attempts } => {
                write!(f, "simulation panicked on all {attempts} attempts: {msg}")
            }
            RunError::BudgetExhausted => f.write_str("wall budget exhausted before the run"),
        }
    }
}

impl std::error::Error for RunError {}

/// The worker-thread count batch entry points use when the caller doesn't
/// pass one: the `SPS_THREADS` environment variable if set to a positive
/// integer, otherwise everything the OS reports.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Work-stealing index dispatch for a batch of `n` items over `w`
/// workers.
///
/// Each worker owns a deque seeded with a contiguous chunk of `0..n`
/// (worker 0 gets the first chunk, and the first `n % w` chunks are one
/// item longer). Owners pop from the **front** — walking their chunk in
/// input order, which keeps consecutive replications of one sweep cell
/// (sharing a cached trace) on one thread. A worker whose deque drains
/// scans the others round-robin from its own slot and steals the **back
/// half** (rounded up) of the first non-empty victim: stealing from the
/// back takes the work the owner would reach last, and taking half
/// amortizes steal traffic to O(log) per worker instead of per item.
///
/// Plain mutexes, not lock-free: batch items are whole simulations
/// (milliseconds to minutes), so queue operations are nanoseconds of
/// noise and `std`-only simplicity wins. Termination is by emptiness —
/// every index is either in some deque or in flight on the worker that
/// popped it, so a worker that finds every deque empty can exit: nothing
/// is left for it to take over.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Split `0..n` into contiguous chunks, one per worker.
    fn split(n: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let (base, extra) = (n / workers, n % workers);
        let mut queues = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            queues.push(Mutex::new((next..next + len).collect()));
            next += len;
        }
        debug_assert_eq!(next, n);
        StealQueues { queues }
    }

    /// Next index for worker `me`: own front, else steal. `None` means
    /// the whole batch is finished or in flight elsewhere.
    #[cfg_attr(not(test), allow(dead_code))]
    fn pop(&self, me: usize) -> Option<usize> {
        self.pop_tracked(me).0
    }

    /// [`pop`](StealQueues::pop) plus steal accounting: the extra flags
    /// say whether the pop had to scan victims (own deque empty) and
    /// whether the scan landed work. Same dispatch order bit for bit.
    fn pop_tracked(&self, me: usize) -> (Option<usize>, bool, bool) {
        if let Some(i) = self.queues[me].lock().expect("queue poisoned").pop_front() {
            return (Some(i), false, false);
        }
        let mut attempted = false;
        for k in 1..self.queues.len() {
            attempted = true;
            let victim = (me + k) % self.queues.len();
            let mut q = self.queues[victim].lock().expect("queue poisoned");
            let len = q.len();
            if len == 0 {
                continue;
            }
            // Take the back half; q keeps its front (the owner's next
            // work), we keep the stolen run in input order.
            let stolen: VecDeque<usize> = q.split_off(len - len.div_ceil(2));
            drop(q);
            let mut mine = self.queues[me].lock().expect("queue poisoned");
            *mine = stolen;
            return (mine.pop_front(), true, true);
        }
        (None, attempted, false)
    }

    /// Current depth of worker `me`'s own deque.
    fn depth(&self, me: usize) -> usize {
        self.queues[me].lock().expect("queue poisoned").len()
    }
}

/// Fallible batch run with an explicit worker count and runner — the seam
/// the sweep harness drives and the panic-isolation tests inject a faulty
/// runner through. Workers drain a [`StealQueues`] dispatch and send
/// `(index, result)` pairs over a channel; the caller's thread reassembles
/// them in input order, so results are identical for any worker count.
/// Panic messages are prefixed with the offending configuration's
/// scheduler spec so a poisoned cell in a large grid is identifiable from
/// the error alone.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn run_batch<T, F>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
{
    run_batch_observed(configs, threads, runner, |_, _| {})
}

/// [`run_batch`] with a progress observer. `observe(index, result)` runs
/// on the caller's thread, once per *terminal* outcome in completion order
/// — a panicked or invalid cell is observed exactly like a successful one,
/// so progress accounting (done counts, ETA math) never stalls on a failed
/// replication.
pub(crate) fn run_batch_observed<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
    observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    run_batch_retrying(configs, threads, 0, None, runner, observe)
}

/// [`run_batch_observed`] with bounded retry for panicked workers and an
/// optional wall-clock deadline. A configuration whose runner panics is
/// retried up to `retries` more times (linear 25 ms backoff between
/// attempts, on the worker thread) before surfacing [`RunError::Panicked`]
/// with the attempt count. A deterministic panic still fails after
/// `retries + 1` attempts; a flaky one — OOM pressure, a poisoned
/// thread-local, anything environmental — no longer voids its cell in a
/// mega-sweep.
///
/// When `deadline` is set, a configuration whose turn comes up after the
/// deadline is skipped with [`RunError::BudgetExhausted`] instead of run:
/// the batch drains gracefully and the caller aggregates whatever
/// completed in time. In-flight runs are not interrupted here — the sweep
/// harness additionally caps their per-run watchdog to the remaining
/// budget.
pub(crate) fn run_batch_retrying<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    retries: u32,
    deadline: Option<std::time::Instant>,
    runner: F,
    observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    run_batch_sharded(
        configs,
        threads,
        retries,
        deadline,
        None,
        |_, cfg| runner(cfg),
        observe,
    )
}

/// The worker count [`run_batch_sharded`] actually spawns for a batch of
/// `n` items: callers sizing a [`ShardBoard`] must use the same clamp.
pub(crate) fn batch_workers(threads: usize, n: usize) -> usize {
    threads.max(1).min(n.max(1))
}

/// [`run_batch_retrying`] with per-worker shard telemetry. The runner
/// additionally receives its worker slot (so profiled runs can tag their
/// spans), and a [`ShardBoard`] — when provided — collects per-worker
/// counters and worker-lane spans as the batch executes. Dispatch order,
/// results, and retry/deadline semantics are identical to the untracked
/// path; the board only observes.
pub(crate) fn run_batch_sharded<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    retries: u32,
    deadline: Option<Instant>,
    board: Option<&ShardBoard>,
    runner: F,
    mut observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(usize, &Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    let configs: Vec<Arc<ExperimentConfig>> = configs.into_iter().map(Arc::new).collect();
    let n = configs.len();
    let workers = batch_workers(threads, n);
    debug_assert!(
        board.is_none_or(|b| b.shards.len() >= workers),
        "shard board sized below the worker count"
    );
    let queues = StealQueues::split(n, workers);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<T, RunError>)>();
    let configs_ref = &configs;
    let queues_ref = &queues;
    let runner_ref = &runner;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                let worker_start = Instant::now();
                let mut busy = Duration::ZERO;
                loop {
                    let (popped, steal_attempted, steal_succeeded) = queues_ref.pop_tracked(me);
                    let Some(i) = popped else { break };
                    if let Some(b) = board {
                        let mut s = b.shards[me].lock().expect("shard poisoned");
                        s.steals_attempted += u64::from(steal_attempted);
                        s.steals_succeeded += u64::from(steal_succeeded);
                        s.queue_depth_sum += queues_ref.depth(me) as u64;
                        s.queue_depth_samples += 1;
                    }
                    let cfg = &configs_ref[i];
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        if let Some(b) = board {
                            b.shards[me].lock().expect("shard poisoned").cells_failed += 1;
                        }
                        if tx.send((i, Err(RunError::BudgetExhausted))).is_err() {
                            break;
                        }
                        continue;
                    }
                    let run_start = Instant::now();
                    let result = match cfg.validate() {
                        Err(e) => Err(RunError::Invalid(e)),
                        Ok(()) => {
                            let mut attempts = 0u32;
                            loop {
                                attempts += 1;
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    runner_ref(me, cfg)
                                })) {
                                    Ok(v) => break Ok(v),
                                    Err(payload) => {
                                        let msg = format!(
                                            "[{}] {}",
                                            cfg.scheduler,
                                            panic_message(&*payload)
                                        );
                                        if attempts > retries {
                                            break Err(RunError::Panicked { msg, attempts });
                                        }
                                        std::thread::sleep(std::time::Duration::from_millis(
                                            25 * attempts as u64,
                                        ));
                                    }
                                }
                            }
                        }
                    };
                    let dur = run_start.elapsed();
                    busy += dur;
                    if let Some(b) = board {
                        b.push_span(WorkerSpan {
                            worker: me,
                            index: i,
                            start_ns: run_start.duration_since(b.epoch).as_nanos() as u64,
                            dur_ns: dur.as_nanos() as u64,
                            ok: result.is_ok(),
                        });
                        let mut s = b.shards[me].lock().expect("shard poisoned");
                        if result.is_ok() {
                            s.cells_done += 1;
                        } else {
                            s.cells_failed += 1;
                        }
                        if let Some(rss) = crate::mega::peak_rss_kb() {
                            s.peak_rss_kb = s.peak_rss_kb.max(rss);
                        }
                    }
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
                if let Some(b) = board {
                    let total = worker_start.elapsed();
                    let mut s = b.shards[me].lock().expect("shard poisoned");
                    s.busy_ns += busy.as_nanos() as u64;
                    s.idle_ns += total.saturating_sub(busy).as_nanos() as u64;
                }
            });
        }
        drop(tx); // the receive loop ends once every worker is done
        let mut results: Vec<Option<Result<T, RunError>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            observe(i, &r);
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every experiment ran"))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SchedulerKind;
    use crate::runner::BatchRunner;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler)
            .with_jobs(300)
            .with_seed(7)
    }

    #[test]
    fn steal_queues_split_contiguously_and_cover_everything() {
        for (n, workers) in [(0, 1), (1, 4), (7, 3), (12, 4), (100, 16)] {
            let q = StealQueues::split(n, workers);
            assert_eq!(q.queues.len(), workers);
            let mut all = Vec::new();
            for (w, m) in q.queues.iter().enumerate() {
                let chunk: Vec<usize> = m.lock().unwrap().iter().copied().collect();
                // Contiguous ascending chunk; earlier workers never hold
                // later indices than later workers.
                assert!(chunk.windows(2).all(|p| p[1] == p[0] + 1), "worker {w}");
                all.extend(chunk);
            }
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} w={workers}");
            // Chunk sizes differ by at most one.
            let sizes: Vec<usize> = q.queues.iter().map(|m| m.lock().unwrap().len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "sizes {sizes:?}");
        }
    }

    #[test]
    fn stealing_takes_the_back_half_and_drains_everything() {
        let q = StealQueues::split(8, 2);
        // Worker 1's chunk is 4..8. Drain it so it must steal.
        for want in 4..8 {
            assert_eq!(q.pop(1), Some(want), "owner walks its chunk in order");
        }
        // Steal: worker 0 still holds 0..4, the thief takes the back half
        // {2, 3} and processes it in input order.
        assert_eq!(q.pop(1), Some(2));
        assert_eq!(q.pop(1), Some(3));
        // The victim kept its front.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn batch_results_are_thread_count_invariant_with_failures() {
        // The dispatch order varies with the worker count; the result
        // vector must not — including panicked and invalid cells.
        let mk = || {
            let mut v = Vec::new();
            for seed in 0..9u64 {
                v.push(small(SchedulerKind::Easy).with_jobs(60).with_seed(seed));
            }
            v[3] = v[3].clone().with_seed(777); // injected panic below
            v[5] = v[5].clone().with_jobs(0); // invalid
            v
        };
        let run = |threads: usize| -> Vec<String> {
            run_batch_retrying(
                mk(),
                threads,
                0,
                None,
                |cfg: &Arc<ExperimentConfig>| {
                    if cfg.seed == 777 {
                        panic!("injected failure");
                    }
                    let r = cfg.run();
                    format!("{}:{}", r.sim.policy, r.report.overall.count)
                },
                |_, _| {},
            )
            .into_iter()
            .map(|r| match r {
                Ok(s) => s,
                Err(e) => format!("err:{e}"),
            })
            .collect()
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(16));
        assert!(one[3].contains("injected failure"));
        assert!(one[5].contains("invalid config"));
    }

    #[test]
    fn batch_runner_matches_sequential_and_keeps_order() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Ss { sf: 2.0 }),
            small(SchedulerKind::Fcfs),
        ];
        let parallel = BatchRunner::new(configs.clone()).run();
        for (cfg, par) in configs.iter().zip(&parallel) {
            let seq = cfg.run();
            assert_eq!(par.sim.policy, seq.sim.policy);
            assert_eq!(par.report.overall.count, seq.report.overall.count);
            assert!(
                (par.report.overall.mean_slowdown - seq.report.overall.mean_slowdown).abs() < 1e-12
            );
        }
        assert_eq!(parallel[0].sim.policy, "NS (EASY)");
        assert_eq!(parallel[2].sim.policy, "FCFS");
    }

    #[test]
    fn run_batch_keeps_order_with_more_threads_than_work() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let results = run_batch(configs, 16, |cfg| cfg.run());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        assert_eq!(results[1].as_ref().unwrap().sim.policy, "FCFS");
    }

    #[test]
    fn checked_batch_reports_invalid_configs_in_place() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Fcfs),
        ];
        let results = BatchRunner::new(configs).run_checked();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(RunError::Invalid(ConfigError::NoJobs))
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn observer_sees_every_terminal_outcome_including_panics() {
        // Progress accounting must count panicked and invalid cells like
        // successes — an observer that only saw Ok results would stall
        // its done counter (and ETA) on the first failed replication.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let mut seen = Vec::new();
        let results = run_batch_observed(
            configs,
            2,
            |cfg| {
                if cfg.seed == 777 {
                    panic!("injected failure for seed 777");
                }
                cfg.run()
            },
            |i, r| seen.push((i, r.is_err())),
        );
        assert_eq!(results.len(), 4);
        assert_eq!(seen.len(), 4, "one observation per terminal outcome");
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, false), (1, true), (2, true), (3, false)],
            "panicked and invalid cells are observed exactly like successes"
        );
    }

    #[test]
    fn worker_panic_does_not_kill_the_batch() {
        // A runner that blows up on one specific configuration: the other
        // configurations must still produce results, in order.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let results = run_batch(configs, 2, |cfg| {
            if cfg.seed == 777 {
                panic!("injected failure for seed 777");
            }
            cfg.run()
        });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        match &results[1] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert!(msg.contains("injected failure"), "got {msg:?}");
                assert_eq!(*attempts, 1, "no retries were requested");
            }
            other => panic!("expected a caught panic, got {other:?}"),
        }
        assert_eq!(
            results[2].as_ref().unwrap().report.overall.count,
            300,
            "the batch kept running after the panic"
        );
    }

    #[test]
    fn retry_recovers_flaky_workers_and_counts_attempts() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let flaky_left = AtomicU32::new(2); // panic twice, then succeed
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Gang).with_seed(778),
        ];
        let results = run_batch_retrying(
            configs,
            1, // deterministic attempt interleaving
            3,
            None,
            |cfg| {
                if cfg.seed == 777
                    && flaky_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("transient failure");
                }
                if cfg.seed == 778 {
                    panic!("deterministic failure");
                }
                cfg.run()
            },
            |_, _| {},
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_ok(), "flaky cell must recover within budget");
        match &results[2] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert_eq!(*attempts, 4, "initial attempt plus three retries");
                assert!(msg.contains("deterministic failure"));
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        let shown = results[2].as_ref().unwrap_err().to_string();
        assert!(shown.contains("all 4 attempts"), "got {shown:?}");
    }

    #[test]
    fn shard_board_accounts_every_cell_and_observes_only() {
        let mk = || {
            (0..6u64)
                .map(|seed| small(SchedulerKind::Easy).with_jobs(60).with_seed(seed))
                .collect::<Vec<_>>()
        };
        let threads = 2;
        let board = ShardBoard::new(batch_workers(threads, 6));
        let tracked = run_batch_sharded(
            mk(),
            threads,
            0,
            None,
            Some(&board),
            |_, cfg: &Arc<ExperimentConfig>| cfg.run().report.overall.count,
            |_, _| {},
        );
        let untracked = run_batch_retrying(
            mk(),
            threads,
            0,
            None,
            |cfg| cfg.run().report.overall.count,
            |_, _| {},
        );
        assert_eq!(
            tracked
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            untracked
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            "the board must not perturb results"
        );
        let shards = board.snapshot();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards.iter().map(|s| s.worker).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let done: u64 = shards.iter().map(|s| s.cells_done).sum();
        let failed: u64 = shards.iter().map(|s| s.cells_failed).sum();
        assert_eq!(done + failed, 6, "every cell lands on exactly one shard");
        assert_eq!(failed, 0);
        let samples: u64 = shards.iter().map(|s| s.queue_depth_samples).sum();
        assert_eq!(samples, 6, "one depth sample per popped cell");
        assert!(shards.iter().all(|s| s.busy_ns > 0));
        let spans = board.take_spans();
        assert_eq!(spans.len(), 6, "one worker span per executed cell");
        let mut indices: Vec<usize> = spans.iter().map(|s| s.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..6).collect::<Vec<_>>());
        assert!(spans.iter().all(|s| s.ok && s.dur_ns > 0));
        assert!(board.take_spans().is_empty(), "take_spans drains");
    }

    #[test]
    fn shard_board_counts_failures_and_steal_attempts() {
        let configs = vec![
            small(SchedulerKind::Easy).with_jobs(60),
            small(SchedulerKind::Fcfs).with_jobs(0), // invalid
            small(SchedulerKind::Fcfs).with_seed(777),
        ];
        let board = ShardBoard::new(batch_workers(1, 3));
        let results = run_batch_sharded(
            configs,
            1,
            0,
            None,
            Some(&board),
            |worker, cfg: &Arc<ExperimentConfig>| {
                assert_eq!(worker, 0, "single-threaded batch runs on worker 0");
                if cfg.seed == 777 {
                    panic!("injected failure");
                }
                cfg.run()
            },
            |_, _| {},
        );
        assert!(results[0].is_ok());
        let shards = board.snapshot();
        assert_eq!(shards[0].cells_done, 1);
        assert_eq!(shards[0].cells_failed, 2, "invalid + panicked");
        // A lone worker has no victims to scan.
        assert_eq!(shards[0].steals_attempted, 0);
        let spans = board.take_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans.iter().filter(|s| s.ok).count(), 1);
    }

    #[test]
    fn expired_deadline_skips_runs_without_running_them() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let mut seen = 0usize;
        let results = run_batch_retrying(
            configs,
            2,
            0,
            Some(std::time::Instant::now()),
            |cfg| cfg.run(),
            |_, r| {
                assert!(matches!(r, Err(RunError::BudgetExhausted)));
                seen += 1;
            },
        );
        assert_eq!(seen, 2, "skipped runs still reach the observer");
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(RunError::BudgetExhausted))));
    }
}
