//! The thread-pool batch seam: [`RunError`], [`default_threads`], and the
//! `run_batch*` family that [`BatchRunner`](crate::runner::BatchRunner)
//! and the sweep harness drive. Workers pull indices from a shared
//! counter, so a slow cell never blocks the queue, and per-configuration
//! `catch_unwind` keeps one poisoned cell from voiding a whole grid.

use std::fmt;
use std::sync::Arc;

use super::{ConfigError, ExperimentConfig};

/// Why one configuration in a batch produced no result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration failed [`ExperimentConfig::validate`].
    Invalid(ConfigError),
    /// The simulation panicked on every attempt; the last payload message
    /// and the attempt count are attached. Other configurations in the
    /// batch are unaffected.
    Panicked {
        /// The last attempt's panic payload message.
        msg: String,
        /// How many times the configuration was tried (1 without retries).
        attempts: u32,
    },
    /// The batch's wall-clock budget ran out before this configuration
    /// started ([`crate::sweep::SweepSpec::with_wall_budget`]); the run
    /// was skipped so the rest of the grid could report partial results.
    BudgetExhausted,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(e) => write!(f, "invalid config: {e}"),
            RunError::Panicked { msg, attempts: 1 } => {
                write!(f, "simulation panicked: {msg}")
            }
            RunError::Panicked { msg, attempts } => {
                write!(f, "simulation panicked on all {attempts} attempts: {msg}")
            }
            RunError::BudgetExhausted => f.write_str("wall budget exhausted before the run"),
        }
    }
}

impl std::error::Error for RunError {}

/// The worker-thread count batch entry points use when the caller doesn't
/// pass one: the `SPS_THREADS` environment variable if set to a positive
/// integer, otherwise everything the OS reports.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Fallible batch run with an explicit worker count and runner — the seam
/// the sweep harness drives and the panic-isolation tests inject a faulty
/// runner through. Workers pull indices from a shared counter and send
/// `(index, result)` pairs over a channel; the caller's thread reassembles
/// them in input order. Panic messages are prefixed with the offending
/// configuration's scheduler spec so a poisoned cell in a large grid is
/// identifiable from the error alone.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn run_batch<T, F>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
{
    run_batch_observed(configs, threads, runner, |_, _| {})
}

/// [`run_batch`] with a progress observer. `observe(index, result)` runs
/// on the caller's thread, once per *terminal* outcome in completion order
/// — a panicked or invalid cell is observed exactly like a successful one,
/// so progress accounting (done counts, ETA math) never stalls on a failed
/// replication.
pub(crate) fn run_batch_observed<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    runner: F,
    observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    run_batch_retrying(configs, threads, 0, None, runner, observe)
}

/// [`run_batch_observed`] with bounded retry for panicked workers and an
/// optional wall-clock deadline. A configuration whose runner panics is
/// retried up to `retries` more times (linear 25 ms backoff between
/// attempts, on the worker thread) before surfacing [`RunError::Panicked`]
/// with the attempt count. A deterministic panic still fails after
/// `retries + 1` attempts; a flaky one — OOM pressure, a poisoned
/// thread-local, anything environmental — no longer voids its cell in a
/// mega-sweep.
///
/// When `deadline` is set, a configuration whose turn comes up after the
/// deadline is skipped with [`RunError::BudgetExhausted`] instead of run:
/// the batch drains gracefully and the caller aggregates whatever
/// completed in time. In-flight runs are not interrupted here — the sweep
/// harness additionally caps their per-run watchdog to the remaining
/// budget.
pub(crate) fn run_batch_retrying<T, F, O>(
    configs: Vec<ExperimentConfig>,
    threads: usize,
    retries: u32,
    deadline: Option<std::time::Instant>,
    runner: F,
    mut observe: O,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(&Arc<ExperimentConfig>) -> T + Sync,
    O: FnMut(usize, &Result<T, RunError>),
{
    let configs: Vec<Arc<ExperimentConfig>> = configs.into_iter().map(Arc::new).collect();
    let n = configs.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<T, RunError>)>();
    let configs_ref = &configs;
    let next_ref = &next;
    let runner_ref = &runner;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(n) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cfg = &configs_ref[i];
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    if tx.send((i, Err(RunError::BudgetExhausted))).is_err() {
                        break;
                    }
                    continue;
                }
                let result = match cfg.validate() {
                    Err(e) => Err(RunError::Invalid(e)),
                    Ok(()) => {
                        let mut attempts = 0u32;
                        loop {
                            attempts += 1;
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                runner_ref(cfg)
                            })) {
                                Ok(v) => break Ok(v),
                                Err(payload) => {
                                    let msg =
                                        format!("[{}] {}", cfg.scheduler, panic_message(&*payload));
                                    if attempts > retries {
                                        break Err(RunError::Panicked { msg, attempts });
                                    }
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        25 * attempts as u64,
                                    ));
                                }
                            }
                        }
                    }
                };
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the receive loop ends once every worker is done
        let mut results: Vec<Option<Result<T, RunError>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            observe(i, &r);
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every experiment ran"))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SchedulerKind;
    use crate::runner::BatchRunner;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler)
            .with_jobs(300)
            .with_seed(7)
    }

    #[test]
    fn batch_runner_matches_sequential_and_keeps_order() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Ss { sf: 2.0 }),
            small(SchedulerKind::Fcfs),
        ];
        let parallel = BatchRunner::new(configs.clone()).run();
        for (cfg, par) in configs.iter().zip(&parallel) {
            let seq = cfg.run();
            assert_eq!(par.sim.policy, seq.sim.policy);
            assert_eq!(par.report.overall.count, seq.report.overall.count);
            assert!(
                (par.report.overall.mean_slowdown - seq.report.overall.mean_slowdown).abs() < 1e-12
            );
        }
        assert_eq!(parallel[0].sim.policy, "NS (EASY)");
        assert_eq!(parallel[2].sim.policy, "FCFS");
    }

    #[test]
    fn run_batch_keeps_order_with_more_threads_than_work() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let results = run_batch(configs, 16, |cfg| cfg.run());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        assert_eq!(results[1].as_ref().unwrap().sim.policy, "FCFS");
    }

    #[test]
    fn checked_batch_reports_invalid_configs_in_place() {
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Fcfs),
        ];
        let results = BatchRunner::new(configs).run_checked();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(RunError::Invalid(ConfigError::NoJobs))
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn observer_sees_every_terminal_outcome_including_panics() {
        // Progress accounting must count panicked and invalid cells like
        // successes — an observer that only saw Ok results would stall
        // its done counter (and ETA) on the first failed replication.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Fcfs).with_jobs(0),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let mut seen = Vec::new();
        let results = run_batch_observed(
            configs,
            2,
            |cfg| {
                if cfg.seed == 777 {
                    panic!("injected failure for seed 777");
                }
                cfg.run()
            },
            |i, r| seen.push((i, r.is_err())),
        );
        assert_eq!(results.len(), 4);
        assert_eq!(seen.len(), 4, "one observation per terminal outcome");
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, false), (1, true), (2, true), (3, false)],
            "panicked and invalid cells are observed exactly like successes"
        );
    }

    #[test]
    fn worker_panic_does_not_kill_the_batch() {
        // A runner that blows up on one specific configuration: the other
        // configurations must still produce results, in order.
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Ss { sf: 2.0 }),
        ];
        let results = run_batch(configs, 2, |cfg| {
            if cfg.seed == 777 {
                panic!("injected failure for seed 777");
            }
            cfg.run()
        });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().sim.policy, "NS (EASY)");
        match &results[1] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert!(msg.contains("injected failure"), "got {msg:?}");
                assert_eq!(*attempts, 1, "no retries were requested");
            }
            other => panic!("expected a caught panic, got {other:?}"),
        }
        assert_eq!(
            results[2].as_ref().unwrap().report.overall.count,
            300,
            "the batch kept running after the panic"
        );
    }

    #[test]
    fn retry_recovers_flaky_workers_and_counts_attempts() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let flaky_left = AtomicU32::new(2); // panic twice, then succeed
        let configs = vec![
            small(SchedulerKind::Easy),
            small(SchedulerKind::Fcfs).with_seed(777),
            small(SchedulerKind::Gang).with_seed(778),
        ];
        let results = run_batch_retrying(
            configs,
            1, // deterministic attempt interleaving
            3,
            None,
            |cfg| {
                if cfg.seed == 777
                    && flaky_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("transient failure");
                }
                if cfg.seed == 778 {
                    panic!("deterministic failure");
                }
                cfg.run()
            },
            |_, _| {},
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_ok(), "flaky cell must recover within budget");
        match &results[2] {
            Err(RunError::Panicked { msg, attempts }) => {
                assert_eq!(*attempts, 4, "initial attempt plus three retries");
                assert!(msg.contains("deterministic failure"));
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        let shown = results[2].as_ref().unwrap_err().to_string();
        assert!(shown.contains("all 4 attempts"), "got {shown:?}");
    }

    #[test]
    fn expired_deadline_skips_runs_without_running_them() {
        let configs = vec![small(SchedulerKind::Easy), small(SchedulerKind::Fcfs)];
        let mut seen = 0usize;
        let results = run_batch_retrying(
            configs,
            2,
            0,
            Some(std::time::Instant::now()),
            |cfg| cfg.run(),
            |_, r| {
                assert!(matches!(r, Err(RunError::BudgetExhausted)));
                seen += 1;
            },
        );
        assert_eq!(seen, 2, "skipped runs still reach the observer");
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(RunError::BudgetExhausted))));
    }
}
