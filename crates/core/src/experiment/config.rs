//! [`SchedulerKind`], [`ExperimentConfig`] (with its spec-string and JSON
//! round-trips), and [`RunResult`].

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use sps_cluster::{SpeedMap, SpeedSpec};
use sps_metrics::{CategoryReport, JobOutcome};
use sps_simcore::{Secs, Watchdog};
use sps_telemetry::TelemetrySink;
use sps_trace::{DecodeError, Json};
use sps_workload::{
    ArrivalSpec, EstimateModel, Job, JobSource, OpenSource, SyntheticConfig, SystemPreset,
    TraceCache, TraceKey, TraceSource,
};

use crate::admission::AdmissionModel;
use crate::checkpoint::{CheckpointModel, PreemptionMode};
use crate::faults::{FaultModel, RecoveryPolicy};
use crate::overhead::OverheadModel;
use crate::policy::Policy;
use crate::sched::{
    Conservative, Easy, Fcfs, FlexBackfill, GangScheduling, ImmediateService, SelectiveSuspension,
};
use crate::sim::{SimResult, Simulator, DEFAULT_TICK_PERIOD};

/// Which scheduler to run.
///
/// Every kind has a canonical spec string — `"fcfs"`, `"cons"`, `"easy"`,
/// `"flex:4"`, `"is"`, `"gang"`, `"ss:2.0"`, `"tss:1.5"` — produced by
/// [`fmt::Display`] and accepted by [`FromStr`], so the CLI, trace-file
/// headers, and config JSON all share one round-trippable grammar.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// First-come-first-served, no backfilling.
    Fcfs,
    /// Conservative backfilling.
    Conservative,
    /// Aggressive (EASY) backfilling — the paper's NS baseline.
    Easy,
    /// Backfilling with reservations for the first `depth` queued jobs
    /// (the EASY ↔ conservative spectrum).
    Flex {
        /// Number of protected queue positions.
        depth: usize,
    },
    /// Immediate Service (Chiang & Vernon).
    ImmediateService,
    /// Time-sliced gang scheduling (Ousterhout matrix, 10-minute
    /// quantum) — Section II's classical preemptive alternative.
    Gang,
    /// Selective Suspension with the given suspension factor.
    Ss {
        /// Suspension factor.
        sf: f64,
    },
    /// Tunable Selective Suspension (SS + per-category limits).
    Tss {
        /// Suspension factor.
        sf: f64,
    },
}

impl SchedulerKind {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match *self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::Conservative => Box::<Conservative>::default(),
            SchedulerKind::Easy => Box::<Easy>::default(),
            SchedulerKind::Flex { depth } => Box::new(FlexBackfill::new(depth)),
            SchedulerKind::ImmediateService => Box::new(ImmediateService::new()),
            SchedulerKind::Gang => Box::<GangScheduling>::default(),
            SchedulerKind::Ss { sf } => Box::new(SelectiveSuspension::ss(sf)),
            SchedulerKind::Tss { sf } => Box::new(SelectiveSuspension::tss(sf)),
        }
    }

    /// Short label for table columns.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::Fcfs => "FCFS".into(),
            SchedulerKind::Conservative => "Cons".into(),
            SchedulerKind::Easy => "NS".into(),
            SchedulerKind::Flex { depth } => format!("Flex-{depth}"),
            SchedulerKind::ImmediateService => "IS".into(),
            SchedulerKind::Gang => "Gang".into(),
            SchedulerKind::Ss { sf } => format!("SS {sf}"),
            SchedulerKind::Tss { sf } => format!("SF={sf} Tuned"),
        }
    }
}

/// Render a suspension factor so that integral values keep a decimal
/// point (`2` → `"2.0"`) — the canonical spec strings stay visibly
/// floating-point and re-parse to the same value.
fn fmt_sf(sf: f64) -> String {
    if sf.fract() == 0.0 {
        format!("{sf:.1}")
    } else {
        format!("{sf}")
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedulerKind::Fcfs => f.write_str("fcfs"),
            SchedulerKind::Conservative => f.write_str("cons"),
            SchedulerKind::Easy => f.write_str("easy"),
            SchedulerKind::Flex { depth } => write!(f, "flex:{depth}"),
            SchedulerKind::ImmediateService => f.write_str("is"),
            SchedulerKind::Gang => f.write_str("gang"),
            SchedulerKind::Ss { sf } => write!(f, "ss:{}", fmt_sf(sf)),
            SchedulerKind::Tss { sf } => write!(f, "tss:{}", fmt_sf(sf)),
        }
    }
}

/// A scheduler spec string that [`SchedulerKind::from_str`] rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedulerError {
    spec: String,
    reason: &'static str,
}

impl fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad scheduler spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParseSchedulerError {}

impl FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseSchedulerError {
            spec: spec.into(),
            reason,
        };
        let lower = spec.trim().to_ascii_lowercase();
        match lower.as_str() {
            "fcfs" => return Ok(SchedulerKind::Fcfs),
            "cons" | "conservative" => return Ok(SchedulerKind::Conservative),
            "easy" | "ns" => return Ok(SchedulerKind::Easy),
            "is" => return Ok(SchedulerKind::ImmediateService),
            "gang" => return Ok(SchedulerKind::Gang),
            _ => {}
        }
        if let Some(depth) = lower.strip_prefix("flex:") {
            let depth: usize = depth.parse().map_err(|_| err("depth must be an integer"))?;
            if depth == 0 {
                return Err(err("flex depth must be at least 1"));
            }
            return Ok(SchedulerKind::Flex { depth });
        }
        let (tuned, sf_text) = if let Some(rest) = lower.strip_prefix("ss:") {
            (false, rest)
        } else if let Some(rest) = lower.strip_prefix("tss:") {
            (true, rest)
        } else {
            return Err(err(
                "expected fcfs | cons | easy | flex:<depth> | is | gang | ss:<sf> | tss:<sf>",
            ));
        };
        let sf: f64 = sf_text
            .parse()
            .map_err(|_| err("suspension factor must be a number"))?;
        if !sf.is_finite() || sf < 1.0 {
            return Err(err("suspension factor must be a finite number ≥ 1"));
        }
        Ok(if tuned {
            SchedulerKind::Tss { sf }
        } else {
            SchedulerKind::Ss { sf }
        })
    }
}

/// Everything needed to reproduce one simulation.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Machine and calibrated job mix.
    pub system: SystemPreset,
    /// Trace length in jobs.
    pub n_jobs: usize,
    /// Trace RNG seed (same seed + system + load → same trace across
    /// schedulers).
    pub seed: u64,
    /// Load factor relative to the preset's baseline (Section VI).
    pub load_factor: f64,
    /// User-estimate model (Section V).
    pub estimates: EstimateModel,
    /// Suspension/restart overhead model (Section V-A).
    pub overhead: OverheadModel,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// Preemption-routine period, seconds (paper: one minute).
    pub tick_period: Secs,
    /// Failure injection (off by default; the simulation is bit-identical
    /// to a fault-free build when disabled).
    pub faults: FaultModel,
    /// Workload boundary: the closed synthetic trace
    /// ([`ArrivalSpec::Trace`], the default) or an unbounded open-system
    /// generator. Open specs run through
    /// [`RunBuilder`](crate::runner::RunBuilder) with a stopping condition.
    pub arrivals: ArrivalSpec,
    /// Admission control ([`AdmissionModel::none`] by default — every
    /// arrival is accepted and the rejection ledger stays empty).
    pub admission: AdmissionModel,
    /// Preemption continuum mode ([`PreemptionMode::InPlace`] by default,
    /// which reproduces the paper's suspend-in-place mechanics
    /// bit-for-bit).
    pub preemption: PreemptionMode,
    /// Checkpoint image cost model, consulted only when [`preemption`]
    /// checkpoints.
    ///
    /// [`preemption`]: ExperimentConfig::preemption
    pub checkpoint: CheckpointModel,
    /// Per-processor speed configuration. The default uniform 1.0 is the
    /// paper's identical-processor machine, bit-for-bit; a non-trivial
    /// spec makes each job progress at the speed of its slowest assigned
    /// processor (gang-synchronous unrelated-machines model).
    pub speed: SpeedSpec,
    /// Whether placement is speed-aware (fastest-first allocation,
    /// default). With `false` the schedulers place as if the machine were
    /// homogeneous while progress still accrues at real speeds — the
    /// speed-blind ablation. Irrelevant under a uniform [`speed`].
    ///
    /// [`speed`]: ExperimentConfig::speed
    pub speed_aware: bool,
}

impl ExperimentConfig {
    /// Baseline configuration: preset defaults, accurate estimates, no
    /// overhead, load factor 1.
    pub fn new(system: SystemPreset, scheduler: SchedulerKind) -> Self {
        ExperimentConfig {
            system,
            n_jobs: system.default_jobs,
            seed: 42,
            load_factor: 1.0,
            estimates: EstimateModel::Accurate,
            overhead: OverheadModel::None,
            scheduler,
            tick_period: DEFAULT_TICK_PERIOD,
            faults: FaultModel::none(),
            arrivals: ArrivalSpec::Trace,
            admission: AdmissionModel::none(),
            preemption: PreemptionMode::InPlace,
            checkpoint: CheckpointModel::default(),
            speed: SpeedSpec::uniform_one(),
            speed_aware: true,
        }
    }

    /// Builder-style mutators.
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// Set the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the load factor.
    pub fn with_load_factor(mut self, f: f64) -> Self {
        self.load_factor = f;
        self
    }

    /// Set the estimate model.
    pub fn with_estimates(mut self, e: EstimateModel) -> Self {
        self.estimates = e;
        self
    }

    /// Set the overhead model.
    pub fn with_overhead(mut self, o: OverheadModel) -> Self {
        self.overhead = o;
        self
    }

    /// Set the scheduler under test.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the preemption-routine period in seconds.
    pub fn with_tick_period(mut self, secs: Secs) -> Self {
        self.tick_period = secs;
        self
    }

    /// Set the failure-injection model.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Switch to a different machine/mix preset. The trace length stays
    /// as configured — call [`ExperimentConfig::with_jobs`] afterwards if
    /// the new preset's default is wanted.
    pub fn with_system(mut self, system: SystemPreset) -> Self {
        self.system = system;
        self
    }

    /// Set the workload boundary (closed trace or open generator).
    pub fn with_arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Set the admission-control model.
    pub fn with_admission(mut self, admission: AdmissionModel) -> Self {
        self.admission = admission;
        self
    }

    /// Set the preemption mode (the checkpoint cost model stays as
    /// configured; see [`ExperimentConfig::with_checkpoint`]).
    pub fn with_preemption(mut self, mode: PreemptionMode) -> Self {
        self.preemption = mode;
        self
    }

    /// Set the checkpoint image cost model.
    pub fn with_checkpoint(mut self, model: CheckpointModel) -> Self {
        self.checkpoint = model;
        self
    }

    /// Set the per-processor speed configuration.
    pub fn with_speed(mut self, speed: SpeedSpec) -> Self {
        self.speed = speed;
        self
    }

    /// Toggle speed-aware placement (default `true`; `false` is the
    /// speed-blind ablation).
    pub fn with_speed_aware(mut self, aware: bool) -> Self {
        self.speed_aware = aware;
        self
    }

    /// Whether this configuration departs from the homogeneous default
    /// (non-uniform speeds, or the placement-blind ablation switch).
    pub fn is_heterogeneous(&self) -> bool {
        !self.speed.is_uniform_one() || !self.speed_aware
    }

    /// The machine's [`SpeedMap`] under this configuration.
    pub fn speed_map(&self) -> SpeedMap {
        SpeedMap::from_spec(&self.speed, self.system.procs).with_aware(self.speed_aware)
    }

    /// The offered load an open-system generator targets when the arrival
    /// spec doesn't pin one: the preset's calibrated baseline scaled by
    /// [`ExperimentConfig::load_factor`] — the same product the closed
    /// trace generator aims at.
    pub fn target_load(&self) -> f64 {
        self.system.base_load * self.load_factor
    }

    /// The configuration's [`JobSource`]: a replay of the finite synthetic
    /// trace for [`ArrivalSpec::Trace`], otherwise the seeded open-system
    /// generator. This is the seam [`crate::runner::RunBuilder`] feeds the
    /// simulator through.
    pub fn job_source(&self) -> Box<dyn JobSource> {
        match self.open_source() {
            Some(open) => Box::new(open),
            None => Box::new(TraceSource::new(self.trace())),
        }
    }

    /// The open-system generator for this configuration, or `None` in
    /// closed trace mode.
    pub fn open_source(&self) -> Option<OpenSource> {
        self.arrivals
            .build(self.system, self.seed, self.target_load(), self.estimates)
    }

    /// Generate this experiment's trace (scheduler-independent).
    pub fn trace(&self) -> Vec<Job> {
        let mut jobs = SyntheticConfig::new(self.system, self.seed)
            .with_jobs(self.n_jobs)
            .with_load_factor(self.load_factor)
            .generate();
        self.estimates.apply(&mut jobs, self.seed.wrapping_add(1));
        jobs
    }

    /// The cache key of this experiment's trace: everything trace
    /// generation depends on, and nothing the scheduler side varies.
    /// Heterogeneous configurations fold their speed setup in so a cached
    /// entry is never shared across speed configurations (homogeneous
    /// keys are unchanged from builds predating the speed model).
    pub fn trace_key(&self) -> TraceKey {
        let key = TraceKey::new(
            self.system,
            self.n_jobs,
            self.seed,
            self.load_factor,
            &self.estimates,
        );
        if self.is_heterogeneous() {
            key.with_speed(&self.speed.to_string(), self.speed_aware)
        } else {
            key
        }
    }

    /// This experiment's trace through a [`TraceCache`]: generated on the
    /// first request for its [`TraceKey`], shared by pointer afterwards.
    /// An SF × scheduler grid over one workload generates it exactly once.
    pub fn trace_shared(&self, cache: &TraceCache) -> Arc<[Job]> {
        cache.get_or_generate(self.trace_key(), || self.trace())
    }

    /// Shared body of the run paths: simulate `jobs` under this
    /// configuration and fold the reports, reusing an existing `Arc` of
    /// the configuration instead of cloning it into the result.
    fn run_on(self: &Arc<Self>, jobs: Vec<Job>) -> RunResult {
        RunResult::from_sim(Arc::clone(self), self.simulate(jobs))
    }

    /// Simulate `jobs` under this configuration and return the raw
    /// [`SimResult`], with no per-category reports built. The sweep
    /// harness folds this straight into a fixed-size
    /// [`RunSummary`](crate::sweep::RunSummary); building (and sorting)
    /// three reports per run just to discard them would dominate the
    /// aggregation cost at grid scale.
    pub fn simulate(&self, jobs: Vec<Job>) -> SimResult {
        let mut sim = Simulator::with_overhead_and_tick(
            jobs,
            self.system.procs,
            self.scheduler.build(),
            self.overhead,
            self.tick_period,
        )
        .with_faults(self.faults)
        .with_admission(self.admission)
        .with_preemption(self.preemption, self.checkpoint)
        .with_watchdog(Watchdog::generous());
        if self.is_heterogeneous() {
            sim = sim.with_speed(self.speed_map());
        }
        sim.run()
    }

    /// [`ExperimentConfig::simulate`] with a telemetry sink attached. The
    /// sink observes the run (metrics, spans, health detectors) without
    /// perturbing it — outcomes are bit-identical to the plain run — and
    /// stays with the caller for rendering afterwards. `SimResult::health`
    /// carries the detector roll-up when the sink tracks health.
    pub fn simulate_instrumented<T: TelemetrySink>(
        &self,
        jobs: Vec<Job>,
        telemetry: &mut T,
    ) -> SimResult {
        let mut sim = Simulator::with_overhead_and_tick(
            jobs,
            self.system.procs,
            self.scheduler.build(),
            self.overhead,
            self.tick_period,
        )
        .with_telemetry(telemetry)
        .with_faults(self.faults)
        .with_admission(self.admission)
        .with_preemption(self.preemption, self.checkpoint)
        .with_watchdog(Watchdog::generous());
        if self.is_heterogeneous() {
            sim = sim.with_speed(self.speed_map());
        }
        sim.run()
    }

    /// Start a [`RunBuilder`](crate::runner::RunBuilder) for this
    /// configuration — the single entry point behind which the historical
    /// per-combination run functions collapsed. Attach sinks, an explicit
    /// [`JobSource`], a stopping condition, or a warmup window, then call
    /// [`run()`](crate::runner::RunBuilder::run) or
    /// [`simulate()`](crate::runner::RunBuilder::simulate).
    pub fn runner(&self) -> crate::runner::RunBuilder {
        crate::runner::RunBuilder::new(Arc::new(self.clone()))
    }

    /// Run the simulation and aggregate reports.
    ///
    /// The simulator runs under a generous watchdog: a policy bug that
    /// livelocks the event loop surfaces as [`RunStatus::Aborted`] with
    /// partial metrics instead of hanging the process.
    ///
    /// [`RunStatus::Aborted`]: crate::sim::RunStatus::Aborted
    pub fn run(&self) -> RunResult {
        let cfg = Arc::new(self.clone());
        let jobs = cfg.trace();
        cfg.run_on(jobs)
    }

    /// [`ExperimentConfig::run`] against a pre-generated shared trace
    /// (see [`ExperimentConfig::trace_shared`]); the per-run copy is a
    /// flat memcpy of the job array instead of a full regeneration.
    pub fn run_shared(self: &Arc<Self>, trace: &Arc<[Job]>) -> RunResult {
        debug_assert_eq!(trace.len(), self.n_jobs, "trace matches the config");
        self.run_on(trace.to_vec())
    }

    /// [`ExperimentConfig::run`] preceded by [`ExperimentConfig::validate`].
    pub fn run_checked(&self) -> Result<RunResult, crate::experiment::ConfigError> {
        self.validate()?;
        Ok(self.run())
    }

    /// Encode as JSON (embedded in trace-file headers). The `faults` key
    /// only appears when failure injection is enabled, so fault-free logs
    /// are byte-identical to those of builds predating the fault model.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".into(), Json::Str(self.system.name.into())),
            ("n_jobs".into(), Json::Int(self.n_jobs as i64)),
            ("seed".into(), Json::Int(self.seed as i64)),
            ("load_factor".into(), Json::Num(self.load_factor)),
            ("estimates".into(), estimates_to_json(&self.estimates)),
            ("overhead".into(), overhead_to_json(&self.overhead)),
            ("scheduler".into(), Json::Str(self.scheduler.to_string())),
            ("tick_period".into(), Json::Int(self.tick_period)),
        ];
        if self.faults.enabled() {
            fields.push(("faults".into(), faults_to_json(&self.faults)));
        }
        // Open-system fields follow the `faults` convention: omitted at
        // their defaults, so closed-system logs stay byte-identical to
        // those of builds predating the open-system mode.
        if !self.arrivals.is_trace() {
            fields.push(("arrivals".into(), Json::Str(self.arrivals.to_string())));
        }
        if self.admission.enabled() {
            fields.push(("admission".into(), Json::Str(self.admission.to_string())));
        }
        // Preemption-continuum fields follow the same convention: omitted
        // under the default in-place mode, so continuum-off logs stay
        // byte-identical to those of builds predating the modes.
        if self.preemption != PreemptionMode::InPlace {
            fields.push((
                "preemption".into(),
                Json::Str(self.preemption.name().into()),
            ));
            fields.push(("checkpoint".into(), checkpoint_to_json(&self.checkpoint)));
        }
        // Heterogeneous-machine fields, same convention: omitted under
        // the default uniform speed-aware setup, so homogeneous logs stay
        // byte-identical to those of builds predating the speed model.
        if !self.speed.is_uniform_one() {
            fields.push(("speed".into(), Json::Str(self.speed.to_string())));
        }
        if !self.speed_aware {
            fields.push(("speed_aware".into(), Json::Bool(false)));
        }
        Json::Obj(fields)
    }

    /// Decode a configuration previously encoded with
    /// [`ExperimentConfig::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, DecodeError> {
        let name = json
            .get("system")
            .and_then(Json::as_str)
            .ok_or(DecodeError::Missing("system"))?;
        let system = SystemPreset::by_name(name).ok_or(DecodeError::Bad("system"))?;
        let scheduler: SchedulerKind = json
            .get("scheduler")
            .and_then(Json::as_str)
            .ok_or(DecodeError::Missing("scheduler"))?
            .parse()
            .map_err(|_| DecodeError::Bad("scheduler"))?;
        let n_jobs = json
            .get("n_jobs")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("n_jobs"))?;
        let seed = json
            .get("seed")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("seed"))?;
        let load_factor = json
            .get("load_factor")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("load_factor"))?;
        let tick_period = json
            .get("tick_period")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("tick_period"))?;
        if n_jobs < 1 || tick_period < 1 || !load_factor.is_finite() || load_factor <= 0.0 {
            return Err(DecodeError::Bad("config"));
        }
        Ok(ExperimentConfig {
            system,
            n_jobs: n_jobs as usize,
            seed: seed as u64,
            load_factor,
            estimates: estimates_from_json(
                json.get("estimates")
                    .ok_or(DecodeError::Missing("estimates"))?,
            )?,
            overhead: overhead_from_json(
                json.get("overhead")
                    .ok_or(DecodeError::Missing("overhead"))?,
            )?,
            scheduler,
            tick_period,
            faults: match json.get("faults") {
                Some(f) => faults_from_json(f)?,
                None => FaultModel::none(),
            },
            arrivals: match json.get("arrivals") {
                Some(a) => a
                    .as_str()
                    .ok_or(DecodeError::Bad("arrivals"))?
                    .parse()
                    .map_err(|_| DecodeError::Bad("arrivals"))?,
                None => ArrivalSpec::Trace,
            },
            admission: match json.get("admission") {
                Some(a) => a
                    .as_str()
                    .ok_or(DecodeError::Bad("admission"))?
                    .parse()
                    .map_err(|_| DecodeError::Bad("admission"))?,
                None => AdmissionModel::none(),
            },
            preemption: match json.get("preemption") {
                Some(p) => p
                    .as_str()
                    .and_then(PreemptionMode::from_name)
                    .ok_or(DecodeError::Bad("preemption"))?,
                None => PreemptionMode::InPlace,
            },
            checkpoint: match json.get("checkpoint") {
                Some(c) => checkpoint_from_json(c)?,
                None => CheckpointModel::default(),
            },
            speed: match json.get("speed") {
                Some(s) => s
                    .as_str()
                    .ok_or(DecodeError::Bad("speed"))?
                    .parse()
                    .map_err(|_| DecodeError::Bad("speed"))?,
                None => SpeedSpec::uniform_one(),
            },
            speed_aware: match json.get("speed_aware") {
                Some(b) => b.as_bool().ok_or(DecodeError::Bad("speed_aware"))?,
                None => true,
            },
        })
    }
}

fn checkpoint_to_json(m: &CheckpointModel) -> Json {
    Json::Obj(vec![
        ("mb_per_sec".into(), Json::Num(m.mb_per_sec)),
        ("interval".into(), Json::Int(m.interval)),
        ("contention".into(), Json::Bool(m.contention)),
    ])
}

pub(super) fn checkpoint_from_json(json: &Json) -> Result<CheckpointModel, DecodeError> {
    let mb_per_sec = json
        .get("mb_per_sec")
        .and_then(Json::as_f64)
        .ok_or(DecodeError::Missing("mb_per_sec"))?;
    let interval = json
        .get("interval")
        .and_then(Json::as_i64)
        .ok_or(DecodeError::Missing("interval"))?;
    let contention = match json.get("contention") {
        Some(c) => c.as_bool().ok_or(DecodeError::Bad("contention"))?,
        None => false,
    };
    let model = CheckpointModel {
        mb_per_sec,
        interval,
        contention,
    };
    if !model.valid() {
        return Err(DecodeError::Bad("checkpoint"));
    }
    Ok(model)
}

fn faults_to_json(m: &FaultModel) -> Json {
    let mut fields = Vec::new();
    if let Some(mtbf) = m.mtbf {
        fields.push(("mtbf".into(), Json::Int(mtbf)));
        fields.push(("mttr".into(), Json::Int(m.mttr)));
    }
    if m.job_crash > 0.0 {
        fields.push(("job_crash".into(), Json::Num(m.job_crash)));
    }
    fields.push(("recovery".into(), Json::Str(m.recovery.name().into())));
    fields.push(("fault_seed".into(), Json::Int(m.seed as i64)));
    Json::Obj(fields)
}

pub(super) fn faults_from_json(json: &Json) -> Result<FaultModel, DecodeError> {
    let mut model = FaultModel::none();
    if let Some(mtbf) = json.get("mtbf") {
        let mtbf = mtbf.as_i64().ok_or(DecodeError::Bad("mtbf"))?;
        let mttr = json
            .get("mttr")
            .and_then(Json::as_i64)
            .ok_or(DecodeError::Missing("mttr"))?;
        if mtbf < 1 || mttr < 1 {
            return Err(DecodeError::Bad("faults"));
        }
        model.mtbf = Some(mtbf);
        model.mttr = mttr;
    }
    if let Some(p) = json.get("job_crash") {
        let p = p.as_f64().ok_or(DecodeError::Bad("job_crash"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(DecodeError::Bad("job_crash"));
        }
        model.job_crash = p;
    }
    if let Some(r) = json.get("recovery") {
        let name = r.as_str().ok_or(DecodeError::Bad("recovery"))?;
        model.recovery = RecoveryPolicy::from_name(name).ok_or(DecodeError::Bad("recovery"))?;
    }
    if let Some(seed) = json.get("fault_seed") {
        model.seed = seed.as_i64().ok_or(DecodeError::Bad("fault_seed"))? as u64;
    }
    Ok(model)
}

fn estimates_to_json(e: &EstimateModel) -> Json {
    match *e {
        EstimateModel::Accurate => Json::Obj(vec![("model".into(), Json::Str("accurate".into()))]),
        EstimateModel::Mixture {
            well_fraction,
            max_factor,
        } => Json::Obj(vec![
            ("model".into(), Json::Str("mixture".into())),
            ("well_fraction".into(), Json::Num(well_fraction)),
            ("max_factor".into(), Json::Num(max_factor)),
        ]),
        EstimateModel::RoundedMixture {
            well_fraction,
            max_factor,
        } => Json::Obj(vec![
            ("model".into(), Json::Str("rounded_mixture".into())),
            ("well_fraction".into(), Json::Num(well_fraction)),
            ("max_factor".into(), Json::Num(max_factor)),
        ]),
    }
}

fn estimates_from_json(json: &Json) -> Result<EstimateModel, DecodeError> {
    let model = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or(DecodeError::Missing("model"))?;
    let fractions = || -> Result<(f64, f64), DecodeError> {
        let well = json
            .get("well_fraction")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("well_fraction"))?;
        let max = json
            .get("max_factor")
            .and_then(Json::as_f64)
            .ok_or(DecodeError::Missing("max_factor"))?;
        if !(0.0..=1.0).contains(&well) || !max.is_finite() || max <= 1.0 {
            return Err(DecodeError::Bad("estimates"));
        }
        Ok((well, max))
    };
    match model {
        "accurate" => Ok(EstimateModel::Accurate),
        "mixture" => {
            let (well_fraction, max_factor) = fractions()?;
            Ok(EstimateModel::Mixture {
                well_fraction,
                max_factor,
            })
        }
        "rounded_mixture" => {
            let (well_fraction, max_factor) = fractions()?;
            Ok(EstimateModel::RoundedMixture {
                well_fraction,
                max_factor,
            })
        }
        _ => Err(DecodeError::Bad("model")),
    }
}

fn overhead_to_json(o: &OverheadModel) -> Json {
    match *o {
        OverheadModel::None => Json::Obj(vec![("model".into(), Json::Str("none".into()))]),
        OverheadModel::MemoryDrain { mb_per_sec } => Json::Obj(vec![
            ("model".into(), Json::Str("memory_drain".into())),
            ("mb_per_sec".into(), Json::Num(mb_per_sec)),
        ]),
    }
}

fn overhead_from_json(json: &Json) -> Result<OverheadModel, DecodeError> {
    let model = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or(DecodeError::Missing("model"))?;
    match model {
        "none" => Ok(OverheadModel::None),
        "memory_drain" => {
            let mb_per_sec = json
                .get("mb_per_sec")
                .and_then(Json::as_f64)
                .ok_or(DecodeError::Missing("mb_per_sec"))?;
            if !mb_per_sec.is_finite() || mb_per_sec <= 0.0 {
                return Err(DecodeError::Bad("mb_per_sec"));
            }
            Ok(OverheadModel::MemoryDrain { mb_per_sec })
        }
        _ => Err(DecodeError::Bad("model")),
    }
}

/// A finished experiment with its aggregations.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that produced it. Shared rather than owned: a
    /// sweep cell's five seed replicas point at five `Arc`s, not five
    /// deep clones, and `Deref` keeps `result.config.scheduler`-style
    /// field access working unchanged.
    pub config: Arc<ExperimentConfig>,
    /// Raw simulation result.
    pub sim: SimResult,
    /// Per-category report over all jobs.
    pub report: CategoryReport,
    /// Report restricted to well-estimated jobs (estimate ≤ 2× run).
    pub report_well: CategoryReport,
    /// Report restricted to badly estimated jobs.
    pub report_badly: CategoryReport,
}

impl RunResult {
    pub(crate) fn from_sim(config: Arc<ExperimentConfig>, sim: SimResult) -> Self {
        let report = CategoryReport::from_outcomes(&sim.outcomes);
        let report_well = CategoryReport::from_filtered(&sim.outcomes, JobOutcome::well_estimated);
        let report_badly = CategoryReport::from_filtered(&sim.outcomes, |o| !o.well_estimated());
        RunResult {
            config,
            sim,
            report,
            report_well,
            report_badly,
        }
    }

    /// Productive utilization, percent.
    pub fn utilization_pct(&self) -> f64 {
        self.sim.utilization * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_workload::traces::SDSC;

    fn small(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig::new(SDSC, scheduler)
            .with_jobs(300)
            .with_seed(7)
    }

    #[test]
    fn trace_is_scheduler_independent() {
        let a = small(SchedulerKind::Easy).trace();
        let b = small(SchedulerKind::Ss { sf: 2.0 }).trace();
        assert_eq!(a, b);
    }

    #[test]
    fn run_produces_full_reports() {
        let r = small(SchedulerKind::Easy).run();
        assert_eq!(r.report.overall.count, 300);
        assert_eq!(
            r.report_well.overall.count + r.report_badly.overall.count,
            300,
            "estimate split partitions the trace"
        );
        assert!(r.sim.utilization > 0.0 && r.sim.utilization <= 1.0);
        assert_eq!(r.sim.preemptions, 0, "NS never suspends");
    }

    #[test]
    fn estimate_split_matches_model() {
        let cfg = small(SchedulerKind::Easy).with_estimates(EstimateModel::Mixture {
            well_fraction: 0.5,
            max_factor: 30.0,
        });
        let r = cfg.run();
        assert!(r.report_well.overall.count > 60);
        assert!(r.report_badly.overall.count > 60);
    }

    #[test]
    fn preemption_json_round_trips_and_is_omitted_when_in_place() {
        let plain = small(SchedulerKind::Ss { sf: 2.0 });
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("preemption") && !rendered.contains("checkpoint"),
            "in-place mode must not appear in config JSON: {rendered}"
        );
        for mode in [PreemptionMode::Checkpoint, PreemptionMode::Migrate] {
            let cfg = plain.clone().with_preemption(mode).with_checkpoint(
                CheckpointModel::paper()
                    .with_interval(900)
                    .with_contention(true),
            );
            let text = cfg.to_json().render();
            let back = ExperimentConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.preemption, cfg.preemption);
            assert_eq!(back.checkpoint, cfg.checkpoint);
        }
        for corrupt in [
            r#"{"mb_per_sec": 0.0, "interval": 600}"#,
            r#"{"interval": 600}"#,
            r#"{"mb_per_sec": 2.0, "interval": 0}"#,
        ] {
            let json = Json::parse(corrupt).unwrap();
            assert!(
                checkpoint_from_json(&json).is_err(),
                "{corrupt} must not parse"
            );
        }
    }

    #[test]
    fn speed_json_round_trips_and_is_omitted_when_uniform() {
        let plain = small(SchedulerKind::Ss { sf: 2.0 });
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("speed"),
            "uniform speed must not appear in config JSON: {rendered}"
        );
        let cfg = plain
            .clone()
            .with_speed("tiers:0.5x64+1.0x64".parse().unwrap())
            .with_speed_aware(false);
        let text = cfg.to_json().render();
        assert!(text.contains("tiers:0.5x64"), "{text}");
        let back = ExperimentConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.speed, cfg.speed);
        assert!(!back.speed_aware);
        // The blind flag alone also survives (speed stays omitted).
        let blind = plain.clone().with_speed_aware(false);
        let back =
            ExperimentConfig::from_json(&Json::parse(&blind.to_json().render()).unwrap()).unwrap();
        assert!(back.speed.is_uniform_one() && !back.speed_aware);
        assert!(Json::parse(r#"{"speed": "tiers:"}"#)
            .map(|j| ExperimentConfig::from_json(&j).is_err())
            .unwrap_or(true));
    }

    #[test]
    fn hetero_configs_get_their_own_trace_keys() {
        let base = small(SchedulerKind::Easy);
        let tiers = base
            .clone()
            .with_speed("tiers:0.5x64+1.0x64".parse().unwrap());
        let blind = tiers.clone().with_speed_aware(false);
        assert_eq!(base.trace_key(), base.clone().trace_key());
        assert_ne!(base.trace_key(), tiers.trace_key());
        assert_ne!(tiers.trace_key(), blind.trace_key());
        // The jobs themselves are speed-independent even so.
        assert_eq!(base.trace(), tiers.trace());
    }

    #[test]
    fn faults_json_round_trips_and_is_omitted_when_disabled() {
        let plain = small(SchedulerKind::Easy);
        assert!(
            plain.to_json().get("faults").is_none(),
            "disabled fault model must not appear in config JSON"
        );
        let cfg = plain.with_faults(
            FaultModel::proc_faults(200_000, 3_600, 9)
                .with_recovery(RecoveryPolicy::Remap)
                .with_job_crash(0.01),
        );
        let text = cfg.to_json().render();
        let back = ExperimentConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.faults, cfg.faults);
        for corrupt in [
            r#"{"mtbf": 0, "mttr": 60}"#,
            r#"{"mtbf": 100}"#,
            r#"{"job_crash": 2.0}"#,
            r#"{"recovery": "lottery"}"#,
        ] {
            let json = Json::parse(corrupt).unwrap();
            assert!(faults_from_json(&json).is_err(), "{corrupt} must not parse");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Ss { sf: 2.0 }.label(), "SS 2");
        assert_eq!(SchedulerKind::Tss { sf: 1.5 }.label(), "SF=1.5 Tuned");
        assert_eq!(SchedulerKind::Easy.label(), "NS");
    }

    #[test]
    fn spec_strings_are_canonical() {
        assert_eq!(SchedulerKind::Ss { sf: 2.0 }.to_string(), "ss:2.0");
        assert_eq!(SchedulerKind::Tss { sf: 1.5 }.to_string(), "tss:1.5");
        assert_eq!(SchedulerKind::Flex { depth: 4 }.to_string(), "flex:4");
        assert_eq!(
            "easy".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Easy
        );
        assert_eq!("ns".parse::<SchedulerKind>().unwrap(), SchedulerKind::Easy);
        assert_eq!(
            "conservative".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Conservative
        );
        assert_eq!(
            " TSS:2.5 ".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Tss { sf: 2.5 }
        );
        for bad in ["", "ss:", "ss:0.5", "ss:nan", "flex:0", "flex:x", "lottery"] {
            assert!(
                bad.parse::<SchedulerKind>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        // Property: parse(k.to_string()) == k over randomly drawn kinds.
        let mut rng = sps_simcore::SimRng::seed_from_u64(0x5EED);
        for _ in 0..2_000 {
            let sf = 1.0 + (rng.below(64_000) as f64) / 1_000.0;
            let kind = match rng.index(8) {
                0 => SchedulerKind::Fcfs,
                1 => SchedulerKind::Conservative,
                2 => SchedulerKind::Easy,
                3 => SchedulerKind::Flex {
                    depth: 1 + rng.index(200),
                },
                4 => SchedulerKind::ImmediateService,
                5 => SchedulerKind::Gang,
                6 => SchedulerKind::Ss { sf },
                _ => SchedulerKind::Tss { sf },
            };
            let spec = kind.to_string();
            assert_eq!(
                spec.parse::<SchedulerKind>().unwrap(),
                kind,
                "spec {spec:?}"
            );
        }
    }

    #[test]
    fn config_json_round_trips() {
        let cfg = ExperimentConfig::new(SDSC, SchedulerKind::Tss { sf: 2.0 })
            .with_jobs(1_234)
            .with_seed(99)
            .with_load_factor(1.3)
            .with_estimates(EstimateModel::Mixture {
                well_fraction: 0.4,
                max_factor: 30.0,
            })
            .with_overhead(OverheadModel::paper())
            .with_tick_period(30);
        let json = cfg.to_json();
        let text = json.render();
        let back = ExperimentConfig::from_json(&sps_trace::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.system.name, cfg.system.name);
        assert_eq!(back.n_jobs, cfg.n_jobs);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.load_factor, cfg.load_factor);
        assert_eq!(back.estimates, cfg.estimates);
        assert_eq!(back.overhead, cfg.overhead);
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.tick_period, cfg.tick_period);
        // Same trace from the round-tripped config.
        assert_eq!(back.trace(), cfg.trace());
    }

    #[test]
    fn builders_cover_every_field() {
        use sps_workload::traces::CTC;
        let cfg = ExperimentConfig::new(SDSC, SchedulerKind::Easy)
            .with_system(CTC)
            .with_scheduler(SchedulerKind::Ss { sf: 3.0 })
            .with_tick_period(120);
        assert_eq!(cfg.system.name, "CTC");
        assert_eq!(cfg.scheduler, SchedulerKind::Ss { sf: 3.0 });
        assert_eq!(cfg.tick_period, 120);
    }

    #[test]
    fn traced_builder_header_embeds_config() {
        use sps_trace::{MemorySink, TraceRecord};
        let cfg = small(SchedulerKind::Ss { sf: 2.0 }).with_jobs(120);
        let mut sink = MemorySink::new();
        let result = cfg.runner().trace_sink(&mut sink).run();
        assert_eq!(result.report.overall.count, 120);
        let records = sink.records();
        let TraceRecord::Header {
            version,
            scheduler,
            config,
        } = &records[0]
        else {
            panic!("first record must be the header");
        };
        assert_eq!(*version, sps_trace::TRACE_VERSION);
        assert_eq!(scheduler, "ss:2.0");
        let back = ExperimentConfig::from_json(config).unwrap();
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.seed, cfg.seed);
        // The log replays cleanly under the validator.
        let stats = sps_trace::validate_records(records, sps_trace::ReplayOptions::default())
            .expect("trace must validate");
        assert_eq!(stats.completions, 120);
    }
}
