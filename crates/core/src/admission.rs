//! Admission control for open-system runs.
//!
//! A closed trace always drains, so every job is eventually served no
//! matter how long the queue grows. An *open* system at or above
//! saturation has no such guarantee: the backlog grows without bound and
//! every metric diverges. Following Lucarelli et al. ("Online
//! Non-preemptive Scheduling on Unrelated Machines with Rejections"), the
//! scheduler may instead **reject** an arriving job for a per-job penalty
//! proportional to its size, turning the objective into
//! `schedule quality + Σ penalties`.
//!
//! [`AdmissionModel`] carries the knobs; the decision itself is a
//! [`crate::policy::Policy`] hook ([`crate::policy::Policy::admit`]) whose
//! default is the **load-adaptive baseline**: admit while the estimated
//! backlog (queued + remaining dispatched work, in machine-seconds) stays
//! at or below `max_backlog`, reject beyond it. Schemes can override the
//! hook to make smarter penalty/slowdown trades; the model rides along in
//! [`crate::policy::DecideCtx`] so decide-time logic can see the same
//! knobs.
//!
//! Rejections are accounted in [`sps_metrics::RejectionSummary`] on the
//! run result; rejected jobs never enter the queue and produce no
//! [`sps_metrics::JobOutcome`].

use std::fmt;
use std::str::FromStr;

use sps_workload::Job;

use crate::sim::SimState;

/// Admission-control knobs for one run. `Default` is [`AdmissionModel::none`]
/// — every job is admitted and the ledger stays empty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionModel {
    /// Backlog ceiling in machine-seconds (estimated outstanding work over
    /// machine size). `None` disables admission control entirely.
    pub max_backlog: Option<f64>,
    /// Penalty scale: a rejected job costs
    /// `penalty_factor × estimate × procs` (scaled processor-seconds).
    pub penalty_factor: f64,
}

impl Default for AdmissionModel {
    fn default() -> Self {
        AdmissionModel::none()
    }
}

impl AdmissionModel {
    /// Admit everything (closed-system behaviour; the hook is never
    /// consulted).
    pub fn none() -> Self {
        AdmissionModel {
            max_backlog: None,
            penalty_factor: 1.0,
        }
    }

    /// The load-adaptive baseline: reject once the estimated backlog
    /// exceeds `max_backlog_secs` machine-seconds, charging
    /// `penalty_factor × estimate × procs` per rejection.
    pub fn load_adaptive(max_backlog_secs: f64, penalty_factor: f64) -> Self {
        assert!(
            max_backlog_secs >= 0.0 && max_backlog_secs.is_finite(),
            "backlog ceiling must be finite and non-negative"
        );
        assert!(
            penalty_factor >= 0.0 && penalty_factor.is_finite(),
            "penalty factor must be finite and non-negative"
        );
        AdmissionModel {
            max_backlog: Some(max_backlog_secs),
            penalty_factor,
        }
    }

    /// Whether admission control is active for this run.
    pub fn enabled(&self) -> bool {
        self.max_backlog.is_some()
    }

    /// The penalty charged for rejecting `job`.
    pub fn penalty(&self, job: &Job) -> f64 {
        self.penalty_factor * job.estimate as f64 * job.procs as f64
    }

    /// The baseline decision: admit while the backlog is at or below the
    /// ceiling. This is what [`crate::policy::Policy::admit`] does unless a
    /// policy overrides it.
    pub fn baseline_admit(&self, state: &SimState) -> bool {
        match self.max_backlog {
            None => true,
            Some(ceiling) => state.backlog_secs() <= ceiling,
        }
    }
}

/// Grammar: `off` or `load:<secs>[,<factor>]`, where `<secs>` takes the
/// usual duration suffixes (`s`/`m`/`h`/`d`). `Display` round-trips.
impl fmt::Display for AdmissionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_backlog {
            None => write!(f, "off"),
            Some(b) => {
                write!(f, "load:{b}")?;
                if self.penalty_factor != 1.0 {
                    write!(f, ",{}", self.penalty_factor)?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for AdmissionModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "off" || s == "none" {
            return Ok(AdmissionModel::none());
        }
        let Some(rest) = s.strip_prefix("load:") else {
            return Err(format!(
                "unknown admission model '{s}' (expected 'off' or 'load:<secs>[,<factor>]')"
            ));
        };
        let mut parts = rest.splitn(2, ',');
        let secs_str = parts.next().unwrap_or_default();
        let secs = match sps_workload::parse_secs(secs_str) {
            Ok(v) => v as f64,
            Err(_) => secs_str
                .parse::<f64>()
                .map_err(|_| format!("bad backlog ceiling '{secs_str}'"))?,
        };
        let factor = match parts.next() {
            None => 1.0,
            Some(p) => p
                .parse::<f64>()
                .map_err(|_| format!("bad penalty factor '{p}'"))?,
        };
        if !(secs >= 0.0 && secs.is_finite()) {
            return Err(format!("backlog ceiling out of range: {secs}"));
        }
        if !(factor >= 0.0 && factor.is_finite()) {
            return Err(format!("penalty factor out of range: {factor}"));
        }
        Ok(AdmissionModel::load_adaptive(secs, factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_admit_everything() {
        let m = AdmissionModel::default();
        assert!(!m.enabled());
        assert_eq!(m, AdmissionModel::none());
    }

    #[test]
    fn penalty_scales_with_estimated_work() {
        let m = AdmissionModel::load_adaptive(3_600.0, 0.5);
        let j = Job::new(0, 0, 100, 200, 8);
        assert!((m.penalty(&j) - 0.5 * 200.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn grammar_round_trips() {
        for s in ["off", "load:3600", "load:7200,0.25"] {
            let m: AdmissionModel = s.parse().unwrap();
            assert_eq!(m.to_string(), s, "round trip of '{s}'");
        }
        // Duration suffixes normalize to seconds.
        let m: AdmissionModel = "load:2h,2".parse().unwrap();
        assert_eq!(m.max_backlog, Some(7_200.0));
        assert_eq!(m.penalty_factor, 2.0);
        assert!("load:nope".parse::<AdmissionModel>().is_err());
        assert!("banana".parse::<AdmissionModel>().is_err());
    }
}
