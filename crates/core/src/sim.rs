//! The event-driven cluster simulator.
//!
//! Mechanics live here; decisions live in [`crate::policy::Policy`]
//! implementations. The simulator maintains, per job, the state machine
//!
//! ```text
//! NotArrived → Queued → Running ⇄ (Draining →) Suspended → Done
//! ```
//!
//! honouring the paper's *local preemption* model: a suspended job keeps
//! its processor assignment and can only re-enter on exactly that set.
//! Suspension and restart each cost the overhead model's drain time; while
//! draining, the victim's processors are still occupied, and the freshly
//! freed processors are announced to the policy via a `ProcsFreed` event.
//!
//! Priorities: the simulator computes both priority notions used in the
//! paper —
//!
//! * [`SimState::xfactor`], the SS/TSS suspension priority
//!   `(wait + estimated run) / estimated run`, frozen while running and
//!   growing while waiting (Section IV), and
//! * [`SimState::inst_xfactor`], IS's instantaneous priority
//!   `(wait + accumulated run) / accumulated run` (Section II-C).

use sps_cluster::{Cluster, ProcSet, Profile};
use sps_metrics::{utilization, FaultSummary, JobOutcome};
use sps_simcore::{
    Engine, EventClass, EventQueue, RunOutcome, Secs, SimTime, Simulation, Ticker, Watchdog,
};
use sps_trace::{JobEvent, NullSink, ProcEvent, TraceCtx, TraceRecord, TraceSink};
use sps_workload::{Job, JobId};

use crate::faults::{FaultInjector, FaultModel, RecoveryPolicy};
use crate::overhead::OverheadModel;
use crate::policy::{Action, DecideCtx, Policy};

/// Simulator events. Public only because the engine's [`Simulation`]
/// trait exposes the event type; constructed exclusively by the simulator.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A job reaches its submit time.
    Arrival(JobId),
    /// A running job's computation finishes. `epoch` invalidates stale
    /// completions after a suspension.
    Completion { job: JobId, epoch: u32 },
    /// A suspension drain finished; the victim's processors are now free.
    /// `epoch` invalidates the drain of a job a fault killed mid-drain.
    DrainDone { job: JobId, epoch: u32 },
    /// A processor failed (fault injection).
    ProcFailed(u32),
    /// A processor returned from repair (fault injection).
    ProcRepaired(u32),
    /// An injected job crash. `epoch` invalidates crashes scheduled for a
    /// dispatch that was preempted or completed first.
    Crash { job: JobId, epoch: u32 },
    /// Periodic scheduler activity.
    Tick,
}

/// Where a job is in its life cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Before its submit time.
    NotArrived,
    /// Waiting in the queue, never started.
    Queued,
    /// On processors. Computation progresses from `compute_start` (which
    /// lies in the future during a restart reload).
    Running {
        /// When computation (re)starts — dispatch time plus reload
        /// overhead.
        compute_start: SimTime,
    },
    /// Preempted; memory image draining until the stored instant, with
    /// processors still occupied.
    Draining,
    /// Off-machine, waiting to re-enter on its original processors.
    Suspended,
    /// Finished.
    Done,
}

/// Runtime record for one job.
#[derive(Clone, Debug)]
struct JobRt {
    job: Job,
    phase: Phase,
    /// Processor set currently or last held (persists through suspension).
    assigned: Option<ProcSet>,
    /// Seconds of computation still to do.
    remaining: Secs,
    /// Waiting time accumulated over closed waiting intervals.
    wait_accum: Secs,
    /// Start of the current waiting interval (valid while waiting).
    wait_since: SimTime,
    /// First dispatch instant.
    first_start: Option<SimTime>,
    /// Expected release time of the current dispatch, by the user
    /// estimate. Used to build backfilling profiles.
    est_end: SimTime,
    /// Number of suspensions suffered.
    suspensions: u32,
    /// Total drain + reload seconds charged so far.
    overhead_total: Secs,
    /// Bumped on every suspension or kill to invalidate in-flight
    /// completion/drain/crash events.
    epoch: u32,
    /// Dispatch instant of the currently open occupancy segment.
    seg_open: Option<SimTime>,
    /// How many times a fault killed this job (work lost, resubmitted).
    kills: u32,
    /// Pending injected crash: the job dies once its executed work reaches
    /// this many seconds. Cleared after firing.
    crash_after: Option<Secs>,
    /// When the suspended job became stranded (a processor of its reserved
    /// set went down under `WaitForRepair`).
    stranded_since: Option<SimTime>,
    /// Stranded under `RecoveryPolicy::Remap`: the scheduler may restart
    /// this job on a different processor set despite the paper's locality
    /// rule.
    remap: bool,
}

impl JobRt {
    fn new(job: Job) -> Self {
        let remaining = job.run;
        let wait_since = job.submit;
        JobRt {
            job,
            phase: Phase::NotArrived,
            assigned: None,
            remaining,
            wait_accum: 0,
            wait_since,
            first_start: None,
            est_end: SimTime::MAX,
            suspensions: 0,
            overhead_total: 0,
            epoch: 0,
            seg_open: None,
            kills: 0,
            crash_after: None,
            stranded_since: None,
            remap: false,
        }
    }

    /// Is the job in a waiting phase (queued, draining, or suspended)?
    fn is_waiting(&self) -> bool {
        matches!(
            self.phase,
            Phase::Queued | Phase::Draining | Phase::Suspended
        )
    }

    /// Total wait up to `now`.
    fn wait_at(&self, now: SimTime) -> Secs {
        if self.is_waiting() {
            self.wait_accum + (now - self.wait_since)
        } else {
            self.wait_accum
        }
    }

    /// Seconds of computation completed by `now`.
    fn executed_at(&self, now: SimTime) -> Secs {
        let done_before = self.job.run - self.remaining;
        match self.phase {
            Phase::Running { compute_start } if now > compute_start => {
                done_before + (now - compute_start)
            }
            _ => done_before,
        }
    }
}

/// One contiguous interval during which a job physically occupied its
/// processor set — from dispatch (start or resume) to release (completion,
/// or the end of the suspension drain). Reload and drain overhead time is
/// included: the processors are busy, even though no productive work runs.
#[derive(Clone, Debug)]
pub struct OccupancySegment {
    /// The occupying job.
    pub job: JobId,
    /// Dispatch instant.
    pub start: SimTime,
    /// Release instant.
    pub end: SimTime,
    /// The exact processors held.
    pub procs: ProcSet,
}

/// Read view of the simulation handed to policies, and the mutable state
/// the simulator applies actions against.
pub struct SimState {
    now: SimTime,
    cluster: Cluster,
    jobs: Vec<JobRt>,
    /// Never-started jobs, in arrival order.
    queued: Vec<JobId>,
    /// Fully drained, waiting to re-enter, in suspension order.
    suspended: Vec<JobId>,
    /// Currently dispatched (running or reloading).
    running: Vec<JobId>,
    /// Number of jobs not yet Done (arrived or not).
    incomplete: usize,
    overhead: OverheadModel,
    outcomes: Vec<JobOutcome>,
    segments: Vec<OccupancySegment>,
    preemptions: u64,
    dropped_actions: u64,
    /// Fault counters (all zero without fault injection).
    fault_stats: FaultSummary,
}

impl SimState {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Machine size.
    pub fn total_procs(&self) -> u32 {
        self.cluster.total()
    }

    /// Free processor count right now.
    pub fn free_count(&self) -> u32 {
        self.cluster.free_count()
    }

    /// The free processor set right now.
    pub fn free_set(&self) -> &ProcSet {
        self.cluster.free_set()
    }

    /// The static job record.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()].job
    }

    /// Never-started queued jobs, in arrival order.
    pub fn queued(&self) -> &[JobId] {
        &self.queued
    }

    /// Suspended jobs awaiting re-entry, in suspension order.
    pub fn suspended(&self) -> &[JobId] {
        &self.suspended
    }

    /// Dispatched jobs (running or reloading).
    pub fn running(&self) -> &[JobId] {
        &self.running
    }

    /// The processor set a dispatched or suspended job occupies/reclaims.
    pub fn assigned_set(&self, id: JobId) -> Option<&ProcSet> {
        self.jobs[id.index()].assigned.as_ref()
    }

    /// Whether the job has been suspended at least once and is waiting to
    /// re-enter.
    pub fn is_suspended(&self, id: JobId) -> bool {
        self.jobs[id.index()].phase == Phase::Suspended
    }

    /// The set of processors currently down (empty without fault
    /// injection).
    pub fn down_set(&self) -> &ProcSet {
        self.cluster.down_set()
    }

    /// Number of processors currently down.
    pub fn down_count(&self) -> u32 {
        self.cluster.down_count()
    }

    /// Whether the suspended job is *stranded*: its reserved re-entry set
    /// includes a down processor, so the paper's local-restart rule cannot
    /// be satisfied until repair.
    pub fn is_stranded(&self, id: JobId) -> bool {
        let rt = &self.jobs[id.index()];
        rt.phase == Phase::Suspended
            && rt
                .assigned
                .as_ref()
                .is_some_and(|s| s.overlaps(self.cluster.down_set()))
    }

    /// Whether the recovery policy has released this suspended job from
    /// the local-restart rule ([`crate::faults::RecoveryPolicy::Remap`]):
    /// the scheduler may resume it on any equally-sized free set.
    pub fn can_remap(&self, id: JobId) -> bool {
        self.jobs[id.index()].remap
    }

    /// Fault counters accumulated so far (all zero without faults).
    pub fn fault_stats(&self) -> &FaultSummary {
        &self.fault_stats
    }

    /// Whether the job is currently dispatched.
    pub fn is_running(&self, id: JobId) -> bool {
        matches!(self.jobs[id.index()].phase, Phase::Running { .. })
    }

    /// The SS/TSS suspension priority (Section IV): expansion factor
    /// `(wait + estimated run) / estimated run`. Grows while the job
    /// waits, frozen while it runs.
    pub fn xfactor(&self, id: JobId) -> f64 {
        let rt = &self.jobs[id.index()];
        let est = rt.job.estimate.max(1) as f64;
        (rt.wait_at(self.now) as f64 + est) / est
    }

    /// IS's instantaneous xfactor (Section II-C):
    /// `(wait + accumulated run) / accumulated run`, with the denominator
    /// floored at one second (a job that has barely run is effectively
    /// unpreemptable, protecting fresh dispatches).
    pub fn inst_xfactor(&self, id: JobId) -> f64 {
        let rt = &self.jobs[id.index()];
        let acc = rt.executed_at(self.now).max(1) as f64;
        (rt.wait_at(self.now) as f64 + acc) / acc
    }

    /// Expected release time of a dispatched job per the user estimate
    /// (dispatch instant + estimated remaining work + reload overhead).
    pub fn estimated_release(&self, id: JobId) -> SimTime {
        self.jobs[id.index()].est_end
    }

    /// Build the future-availability profile from running jobs' estimated
    /// releases — the input to backfilling anchor searches. Processors
    /// held by draining victims are treated as releasing at the drain end
    /// (they are still occupied now).
    pub fn profile(&self) -> Profile {
        let mut releases: Vec<(SimTime, u32)> = Vec::with_capacity(self.running.len());
        for &id in &self.running {
            let rt = &self.jobs[id.index()];
            releases.push((rt.est_end, rt.job.procs));
        }
        for rt in self.jobs.iter().filter(|rt| rt.phase == Phase::Draining) {
            // est_end holds the drain-done instant for draining jobs.
            releases.push((rt.est_end, rt.job.procs));
        }
        // Down processors are masked out of the capacity: a reservation
        // must not count on a processor that may never come back in time.
        Profile::new(
            self.now,
            self.cluster.total() - self.cluster.down_count(),
            self.cluster.free_count(),
            &releases,
        )
    }

    /// Union of the processor sets held by jobs whose suspension drain is
    /// still in progress. These processors are busy *now* but are already
    /// promised back to the free pool (at most one drain time away), so
    /// preemption planners must count them as incoming capacity — a
    /// policy that ignores them will suspend a fresh victim at every tick
    /// of a long drain, cascading preemptions.
    pub fn draining_set(&self) -> ProcSet {
        let mut set = ProcSet::empty(self.cluster.total());
        for rt in self.jobs.iter().filter(|rt| rt.phase == Phase::Draining) {
            set.union_with(rt.assigned.as_ref().expect("draining job has a set"));
        }
        set
    }

    /// Completed-job records so far (final at the end of the run).
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// The overhead model in force.
    pub fn overhead_model(&self) -> OverheadModel {
        self.overhead
    }

    /// Remaining *estimated* work of a dispatched job — what a
    /// reservation-based scheduler believes is left.
    pub fn estimated_remaining(&self, id: JobId) -> Secs {
        (self.estimated_release(id) - self.now).max(1)
    }

    // ------------------------------------------------------------------
    // Mechanics (crate-private): called by the Simulator while applying
    // actions and events.
    // ------------------------------------------------------------------

    /// Close the current waiting interval of `id` at `now`.
    fn end_wait(&mut self, id: JobId) {
        let now = self.now;
        let rt = &mut self.jobs[id.index()];
        debug_assert!(rt.is_waiting() || rt.phase == Phase::NotArrived);
        rt.wait_accum += now - rt.wait_since;
    }

    /// Dispatch a fresh job onto the lowest free processors. Returns false
    /// (dropping the action) if it does not fit.
    fn start(&mut self, id: JobId, queue: &mut EventQueue<Event>) -> bool {
        let procs = self.jobs[id.index()].job.procs;
        if self.jobs[id.index()].phase != Phase::Queued {
            return false;
        }
        let Some(set) = self.cluster.allocate(procs) else {
            return false;
        };
        self.dispatch(id, set, queue);
        true
    }

    /// Dispatch a fresh job onto an explicit processor set (policy-chosen
    /// placement). Returns false if the set is the wrong size or not
    /// entirely free.
    fn start_on(&mut self, id: JobId, set: &ProcSet, queue: &mut EventQueue<Event>) -> bool {
        let procs = self.jobs[id.index()].job.procs;
        if self.jobs[id.index()].phase != Phase::Queued
            || set.count() != procs
            || !self.cluster.can_allocate_exact(set)
        {
            return false;
        }
        self.cluster.allocate_exact(set);
        self.dispatch(id, set.clone(), queue);
        true
    }

    /// Shared tail of [`SimState::start`]/[`SimState::start_on`]: the
    /// processors in `set` are already marked busy.
    fn dispatch(&mut self, id: JobId, set: ProcSet, queue: &mut EventQueue<Event>) {
        let now = self.now;
        self.end_wait(id);
        let rt = &mut self.jobs[id.index()];
        rt.assigned = Some(set);
        rt.first_start = Some(now);
        rt.seg_open = Some(now);
        rt.phase = Phase::Running { compute_start: now };
        rt.est_end = now + rt.job.estimate;
        let done_at = now + rt.remaining;
        queue.push(
            done_at,
            EventClass::Completion,
            Event::Completion {
                job: id,
                epoch: rt.epoch,
            },
        );
        self.queued.retain(|&q| q != id);
        self.running.push(id);
    }

    /// Re-enter a suspended job on its original processor set. Returns
    /// false if the set is not entirely free.
    fn resume(&mut self, id: JobId, queue: &mut EventQueue<Event>) -> bool {
        if self.jobs[id.index()].phase != Phase::Suspended {
            return false;
        }
        let set = self.jobs[id.index()]
            .assigned
            .clone()
            .expect("suspended job keeps its set");
        self.resume_on_set(id, set, queue)
    }

    /// Re-enter a suspended job on an arbitrary equally-sized set
    /// (migration — used only by the migration ablation; the paper's model
    /// forbids it).
    fn resume_on(&mut self, id: JobId, set: &ProcSet, queue: &mut EventQueue<Event>) -> bool {
        if self.jobs[id.index()].phase != Phase::Suspended
            || set.count() != self.jobs[id.index()].job.procs
        {
            return false;
        }
        self.resume_on_set(id, set.clone(), queue)
    }

    fn resume_on_set(&mut self, id: JobId, set: ProcSet, queue: &mut EventQueue<Event>) -> bool {
        let now = self.now;
        if !self.cluster.can_allocate_exact(&set) {
            return false;
        }
        self.cluster.allocate_exact(&set);
        // Re-entering closes any fault bookkeeping on the job.
        if let Some(since) = self.jobs[id.index()].stranded_since.take() {
            self.fault_stats.stranded_secs += now - since;
        }
        self.jobs[id.index()].remap = false;
        self.jobs[id.index()].assigned = Some(set);
        self.end_wait(id);
        let reload = self.overhead.restart_secs(&self.jobs[id.index()].job);
        let rt = &mut self.jobs[id.index()];
        rt.overhead_total += reload;
        rt.seg_open = Some(now);
        let compute_start = now + reload;
        rt.phase = Phase::Running { compute_start };
        // Estimated release: reload + estimated remaining computation.
        let executed = rt.job.run - rt.remaining;
        rt.est_end = compute_start + (rt.job.estimate - executed).max(1);
        let done_at = compute_start + rt.remaining;
        queue.push(
            done_at,
            EventClass::Completion,
            Event::Completion {
                job: id,
                epoch: rt.epoch,
            },
        );
        self.suspended.retain(|&q| q != id);
        self.running.push(id);
        true
    }

    /// Preempt a dispatched job. Its processors stay occupied for the
    /// drain time (zero under [`OverheadModel::None`], in which case they
    /// free immediately). Returns false if the job is not dispatched.
    fn suspend(&mut self, id: JobId, queue: &mut EventQueue<Event>) -> bool {
        let now = self.now;
        let Phase::Running { compute_start } = self.jobs[id.index()].phase else {
            return false;
        };
        let drain = self.overhead.suspend_secs(&self.jobs[id.index()].job);
        let rt = &mut self.jobs[id.index()];
        let executed_this_dispatch = (now - compute_start).max(0);
        rt.remaining -= executed_this_dispatch;
        // A job suspended while still reloading never consumed the tail of
        // its reload; give that time back so overhead accounting equals
        // the processor time actually spent on transitions.
        let unused_reload = (compute_start - now).max(0);
        rt.overhead_total -= unused_reload;
        debug_assert!(rt.overhead_total >= 0);
        debug_assert!(rt.remaining > 0, "suspending a job that already finished");
        rt.suspensions += 1;
        rt.overhead_total += drain;
        rt.epoch += 1; // invalidate the in-flight completion event
        rt.wait_since = now; // waiting clock restarts at the preemption
        self.running.retain(|&q| q != id);
        self.preemptions += 1;
        if drain == 0 {
            let set = self.jobs[id.index()]
                .assigned
                .clone()
                .expect("dispatched job has a set");
            self.cluster.release(&set);
            self.close_segment(id, &set);
            self.jobs[id.index()].phase = Phase::Suspended;
            self.suspended.push(id);
        } else {
            let rt = &mut self.jobs[id.index()];
            rt.phase = Phase::Draining;
            rt.est_end = now + drain; // profile sees the drain occupancy
            queue.push(
                now + drain,
                EventClass::ProcsFreed,
                Event::DrainDone {
                    job: id,
                    epoch: rt.epoch,
                },
            );
        }
        true
    }

    /// A drain finished: release the victim's processors and make it
    /// eligible for re-entry.
    fn drain_done(&mut self, id: JobId) {
        debug_assert_eq!(self.jobs[id.index()].phase, Phase::Draining);
        let set = self.jobs[id.index()]
            .assigned
            .clone()
            .expect("draining job has a set");
        self.cluster.release(&set);
        self.close_segment(id, &set);
        self.jobs[id.index()].phase = Phase::Suspended;
        self.suspended.push(id);
    }

    /// Forcibly evict `id` after a fault: all accumulated work is lost and
    /// the job re-enters the queue from scratch (its `first_start` is kept
    /// for the metrics — the machine did start it). Returns the destroyed
    /// work in processor-seconds. Legal from Running, Draining, and
    /// Suspended.
    fn kill(&mut self, id: JobId) -> Secs {
        let now = self.now;
        let executed = self.jobs[id.index()].executed_at(now);
        let procs = self.jobs[id.index()].job.procs;
        match self.jobs[id.index()].phase {
            Phase::Running { compute_start } => {
                let set = self.jobs[id.index()]
                    .assigned
                    .clone()
                    .expect("dispatched job has a set");
                self.cluster.release(&set);
                self.close_segment(id, &set);
                self.running.retain(|&q| q != id);
                let rt = &mut self.jobs[id.index()];
                // A job killed mid-reload never consumed the reload tail.
                rt.overhead_total -= (compute_start - now).max(0);
                rt.wait_since = now;
            }
            Phase::Draining => {
                let set = self.jobs[id.index()]
                    .assigned
                    .clone()
                    .expect("draining job has a set");
                self.cluster.release(&set);
                self.close_segment(id, &set);
                // The drain tail never ran; the wait clock has been running
                // since the suspension.
                let rt = &mut self.jobs[id.index()];
                rt.overhead_total -= (rt.est_end - now).max(0);
            }
            Phase::Suspended => {
                self.suspended.retain(|&q| q != id);
                if let Some(since) = self.jobs[id.index()].stranded_since.take() {
                    self.fault_stats.stranded_secs += now - since;
                }
            }
            ref phase => unreachable!("kill of job in phase {phase:?}"),
        }
        let rt = &mut self.jobs[id.index()];
        debug_assert!(rt.overhead_total >= 0);
        rt.remaining = rt.job.run;
        rt.epoch += 1; // invalidate in-flight completion/drain/crash events
        rt.phase = Phase::Queued;
        rt.assigned = None;
        rt.est_end = SimTime::MAX;
        rt.kills += 1;
        rt.remap = false;
        rt.stranded_since = None;
        self.queued.push(id);
        let lost = executed * procs as i64;
        self.fault_stats.lost_work += lost;
        lost
    }

    /// Suspended jobs whose reserved re-entry set includes processor `p`.
    fn suspended_on(&self, p: u32) -> Vec<JobId> {
        self.suspended
            .iter()
            .copied()
            .filter(|&id| {
                self.jobs[id.index()]
                    .assigned
                    .as_ref()
                    .is_some_and(|s| s.contains(p))
            })
            .collect()
    }

    /// Close the job's open occupancy segment at the current instant.
    fn close_segment(&mut self, id: JobId, set: &ProcSet) {
        let start = self.jobs[id.index()]
            .seg_open
            .take()
            .expect("releasing processors closes an open segment");
        self.segments.push(OccupancySegment {
            job: id,
            start,
            end: self.now,
            procs: set.clone(),
        });
    }

    /// A valid completion event: record the outcome and free the machine.
    fn complete(&mut self, id: JobId) -> JobOutcome {
        let now = self.now;
        debug_assert!(matches!(self.jobs[id.index()].phase, Phase::Running { .. }));
        let set = self.jobs[id.index()]
            .assigned
            .clone()
            .expect("running job has a set");
        self.cluster.release(&set);
        self.close_segment(id, &set);
        self.running.retain(|&q| q != id);
        let rt = &mut self.jobs[id.index()];
        rt.remaining = 0;
        rt.phase = Phase::Done;
        self.incomplete -= 1;
        let outcome = JobOutcome::new(
            &rt.job,
            rt.first_start.expect("completed job started"),
            now,
            rt.suspensions,
            rt.overhead_total,
        )
        .with_kills(rt.kills);
        self.outcomes.push(outcome.clone());
        outcome
    }
}

/// Which watchdog limit cut a run short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The engine's batch budget tripped.
    BatchLimit,
    /// The engine's event budget tripped.
    EventLimit,
    /// The wall-clock budget tripped.
    WallClock,
}

/// Whether a run finished or a watchdog ended it early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job completed and the event queue drained.
    Completed,
    /// A watchdog limit ended the run; metrics cover the jobs that
    /// completed before the abort.
    Aborted(AbortReason),
}

impl RunStatus {
    /// Whether the run was cut short.
    pub fn is_aborted(self) -> bool {
        matches!(self, RunStatus::Aborted(_))
    }
}

/// Result of a full simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Scheduler name (from the policy).
    pub policy: String,
    /// Completed normally, or aborted by a watchdog with partial metrics.
    pub status: RunStatus,
    /// Jobs left unfinished (non-zero only for aborted runs).
    pub unfinished: usize,
    /// Fault-injection counters (all zero without faults).
    pub faults: FaultSummary,
    /// One record per job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Productive utilization over the makespan.
    pub utilization: f64,
    /// First submission → last completion, seconds.
    pub makespan: Secs,
    /// Total suspensions performed.
    pub preemptions: u64,
    /// Actions dropped because their precondition had lapsed (always zero
    /// for non-preemptive policies and for preemptive ones under zero
    /// overhead).
    pub dropped_actions: u64,
    /// The full machine occupancy record: one segment per dispatch, with
    /// exact processor sets. Powers Gantt/timeline rendering and the
    /// per-processor non-overlap invariant tests.
    pub segments: Vec<OccupancySegment>,
}

/// The simulator: a trace, a machine, a policy, an overhead model.
///
/// ```
/// use sps_core::experiment::SchedulerKind;
/// use sps_core::sim::Simulator;
/// use sps_workload::Job;
///
/// // Two jobs on an 8-processor machine under EASY backfilling.
/// let jobs = vec![Job::new(0, 0, 100, 100, 8), Job::new(1, 5, 100, 100, 8)];
/// let result = Simulator::new(jobs, 8, SchedulerKind::Easy.build()).run();
/// assert_eq!(result.outcomes.len(), 2);
/// assert_eq!(result.makespan, 200);
/// ```
///
/// The sink type parameter follows the `HashMap` hasher pattern: the
/// default [`NullSink`] is statically disabled, so untraced simulations
/// (every existing call site) compile the instrumentation away. To trace,
/// pass any [`TraceSink`] to [`Simulator::with_sink`]; pass `&mut sink`
/// to keep ownership and read the sink after [`Simulator::run`]:
///
/// ```
/// use sps_core::experiment::SchedulerKind;
/// use sps_core::sim::Simulator;
/// use sps_trace::MemorySink;
/// use sps_workload::Job;
///
/// let jobs = vec![Job::new(0, 0, 100, 100, 8)];
/// let mut sink = MemorySink::new();
/// Simulator::with_sink(jobs, 8, SchedulerKind::Easy.build(), &mut sink).run();
/// assert!(!sink.records().is_empty());
/// ```
pub struct Simulator<S: TraceSink = NullSink> {
    state: SimState,
    policy: Box<dyn Policy>,
    ticker: Option<Ticker>,
    /// Arrivals collected for the current instant.
    arrivals_now: Vec<JobId>,
    /// Processor failures delivered at the current instant.
    failures_now: Vec<u32>,
    /// Processor repairs delivered at the current instant.
    repairs_now: Vec<u32>,
    /// Scratch action buffer.
    actions: Vec<Action>,
    /// The live fault process, when fault injection is enabled.
    faults: Option<FaultInjector>,
    /// Abort limits applied to the engine ([`Watchdog::none`] by default).
    watchdog: Watchdog,
    /// Trace record consumer.
    sink: S,
}

/// Preemptive policies run their preemption routine once a minute
/// (Section IV-B: "The scheduler periodically (after every minute) invokes
/// the preemption routine").
pub const DEFAULT_TICK_PERIOD: Secs = 60;

impl Simulator {
    /// Build a simulator. Panics if any job is wider than the machine.
    pub fn new(jobs: Vec<Job>, procs: u32, policy: Box<dyn Policy>) -> Self {
        Self::with_overhead(jobs, procs, policy, OverheadModel::None)
    }

    /// Build a simulator with a suspension-overhead model.
    pub fn with_overhead(
        jobs: Vec<Job>,
        procs: u32,
        policy: Box<dyn Policy>,
        overhead: OverheadModel,
    ) -> Self {
        Self::with_overhead_and_tick(jobs, procs, policy, overhead, DEFAULT_TICK_PERIOD)
    }

    /// Full-control constructor: also set the preemption-routine period
    /// (used by the ablation benches).
    pub fn with_overhead_and_tick(
        jobs: Vec<Job>,
        procs: u32,
        policy: Box<dyn Policy>,
        overhead: OverheadModel,
        tick_period: Secs,
    ) -> Self {
        Simulator::traced(jobs, procs, policy, overhead, tick_period, NullSink)
    }
}

impl<S: TraceSink> Simulator<S> {
    /// Build a simulator that emits trace records into `sink` (no
    /// overhead model, default tick period). Like `HashMap::with_hasher`,
    /// the sink argument fixes the type parameter.
    pub fn with_sink(jobs: Vec<Job>, procs: u32, policy: Box<dyn Policy>, sink: S) -> Self {
        Self::traced(
            jobs,
            procs,
            policy,
            OverheadModel::None,
            DEFAULT_TICK_PERIOD,
            sink,
        )
    }

    /// Fully-parameterized traced constructor.
    pub fn traced(
        jobs: Vec<Job>,
        procs: u32,
        policy: Box<dyn Policy>,
        overhead: OverheadModel,
        tick_period: Secs,
        sink: S,
    ) -> Self {
        for j in &jobs {
            assert!(
                j.procs <= procs,
                "job {} requests {} processors on a {}-processor machine",
                j.id,
                j.procs,
                procs
            );
            assert!(
                j.run > 0 && j.estimate >= j.run,
                "job {} has invalid times",
                j.id
            );
        }
        let incomplete = jobs.len();
        let ticker = policy.needs_tick().then(|| Ticker::new(tick_period));
        Simulator {
            state: SimState {
                now: SimTime::ZERO,
                cluster: Cluster::new(procs),
                jobs: jobs.into_iter().map(JobRt::new).collect(),
                queued: Vec::new(),
                suspended: Vec::new(),
                running: Vec::new(),
                incomplete,
                overhead,
                outcomes: Vec::new(),
                segments: Vec::new(),
                preemptions: 0,
                dropped_actions: 0,
                fault_stats: FaultSummary::default(),
            },
            policy,
            ticker,
            arrivals_now: Vec::new(),
            failures_now: Vec::new(),
            repairs_now: Vec::new(),
            actions: Vec::new(),
            faults: None,
            watchdog: Watchdog::none(),
            sink,
        }
    }

    /// Enable fault injection (builder style). A disabled model
    /// ([`FaultModel::none`]) is a strict no-op: the run stays
    /// bit-identical to one without this call.
    pub fn with_faults(mut self, model: FaultModel) -> Self {
        if model.enabled() {
            let mut inj = FaultInjector::new(model, self.state.cluster.total());
            // Job-crash decisions are drawn once per job in id order, so
            // they are independent of how the schedule unfolds.
            for rt in &mut self.state.jobs {
                rt.crash_after = inj.job_crash_after(rt.job.run);
            }
            self.faults = Some(inj);
        }
        self
    }

    /// Apply watchdog abort limits to the run (builder style).
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Read access to the live state (used by tests).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Emit one job-lifecycle record at the current instant. Callers
    /// check [`TraceSink::enabled`] first, so the untraced build never
    /// reaches the processor-set materialization.
    fn emit_job(&mut self, id: JobId, event: JobEvent, with_procs: bool) {
        let procs = if with_procs {
            Some(
                self.state
                    .assigned_set(id)
                    .expect("traced job holds a set")
                    .iter()
                    .collect(),
            )
        } else {
            None
        };
        self.sink.record(&TraceRecord::Job {
            t: self.state.now.secs(),
            job: id.0,
            event,
            procs,
        });
    }

    /// Run the whole trace to completion and report.
    pub fn run(mut self) -> SimResult {
        let mut queue = EventQueue::with_capacity(self.state.jobs.len() * 2);
        for rt in &self.state.jobs {
            queue.push(
                rt.job.submit,
                EventClass::Arrival,
                Event::Arrival(rt.job.id),
            );
        }
        // Seed the failure process: one initial failure time per
        // processor, drawn in index order.
        if let Some(inj) = &mut self.faults {
            for p in 0..self.state.cluster.total() {
                if let Some(dt) = inj.next_failure_in() {
                    queue.push(SimTime::ZERO + dt, EventClass::Fault, Event::ProcFailed(p));
                }
            }
        }
        let mut engine = Engine::new().with_watchdog(self.watchdog);
        let outcome = engine.run(&mut self, &mut queue);
        if self.sink.enabled() {
            self.sink.record(&TraceRecord::EngineStats {
                t: engine.now().secs(),
                batches: engine.batches(),
                events: engine.events(),
            });
            let _ = self.sink.flush();
        }
        let status = match outcome {
            RunOutcome::BatchLimit => RunStatus::Aborted(AbortReason::BatchLimit),
            RunOutcome::EventLimit => RunStatus::Aborted(AbortReason::EventLimit),
            RunOutcome::WallClockLimit => RunStatus::Aborted(AbortReason::WallClock),
            _ => {
                assert_eq!(
                    outcome,
                    RunOutcome::Drained,
                    "simulation did not drain its event queue"
                );
                assert_eq!(
                    self.state.incomplete, 0,
                    "simulation ended with {} unfinished jobs — policy deadlock",
                    self.state.incomplete
                );
                RunStatus::Completed
            }
        };
        let mut faults = self.state.fault_stats;
        if let Some(inj) = &self.faults {
            faults.downtime = inj.downtime_at(self.state.now);
        }
        let total = self.state.cluster.total();
        let outcomes = std::mem::take(&mut self.state.outcomes);
        let util = utilization(&outcomes, total);
        let makespan = match (
            outcomes.iter().map(|o| o.submit).min(),
            outcomes.iter().map(|o| o.completion).max(),
        ) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        };
        SimResult {
            policy: self.policy.name(),
            status,
            unfinished: self.state.incomplete,
            faults,
            outcomes,
            utilization: util,
            makespan,
            preemptions: self.state.preemptions,
            dropped_actions: self.state.dropped_actions,
            segments: std::mem::take(&mut self.state.segments),
        }
    }

    fn apply(&mut self, queue: &mut EventQueue<Event>) {
        for i in 0..self.actions.len() {
            let action = self.actions[i].clone();
            let ok = match &action {
                Action::Start(id) => self.state.start(*id, queue),
                Action::StartOn(id, set) => self.state.start_on(*id, set, queue),
                Action::Resume(id) => self.state.resume(*id, queue),
                Action::ResumeOn(id, set) => self.state.resume_on(*id, set, queue),
                Action::Suspend(id) => self.state.suspend(*id, queue),
            };
            if !ok {
                self.state.dropped_actions += 1;
                continue;
            }
            if self.faults.is_some() {
                if let Action::Start(id)
                | Action::StartOn(id, _)
                | Action::Resume(id)
                | Action::ResumeOn(id, _) = &action
                {
                    self.schedule_crash(*id, queue);
                }
            }
            if self.sink.enabled() {
                match &action {
                    Action::Start(id) | Action::StartOn(id, _) => {
                        self.emit_job(*id, JobEvent::Dispatch, true)
                    }
                    Action::Resume(id) | Action::ResumeOn(id, _) => {
                        self.emit_job(*id, JobEvent::Restart, true)
                    }
                    Action::Suspend(id) => {
                        self.emit_job(*id, JobEvent::Suspend, true);
                        // A zero-overhead drain finishes instantly — there
                        // is no DrainDone event to hang the record on.
                        if self.state.is_suspended(*id) {
                            self.emit_job(*id, JobEvent::Drain, false);
                        }
                    }
                }
            }
        }
        self.actions.clear();
    }

    /// If `id` has a pending injected crash, schedule it for the dispatch
    /// that just happened: the crash fires when the job's executed work
    /// reaches the drawn threshold. A suspension or kill before that
    /// bumps the epoch and invalidates the event; the next dispatch
    /// re-schedules it.
    fn schedule_crash(&mut self, id: JobId, queue: &mut EventQueue<Event>) {
        let rt = &self.state.jobs[id.index()];
        let Some(after) = rt.crash_after else { return };
        let Phase::Running { compute_start } = rt.phase else {
            return;
        };
        let executed_before = rt.job.run - rt.remaining;
        if after <= executed_before {
            return;
        }
        queue.push(
            compute_start + (after - executed_before),
            EventClass::Fault,
            Event::Crash {
                job: id,
                epoch: rt.epoch,
            },
        );
    }

    /// A processor failed: take it down, kill the dispatched job holding
    /// it (its memory image is gone), apply the recovery policy to
    /// suspended jobs reserving it, and schedule the repair.
    fn on_proc_failed(&mut self, p: u32, queue: &mut EventQueue<Event>) {
        if self.faults.is_none() || self.state.incomplete == 0 {
            // Leftover failure events after the last completion fire
            // harmlessly, letting the queue drain.
            return;
        }
        let now = self.state.now;
        let (recovery, repair_in) = {
            let inj = self.faults.as_mut().expect("checked above");
            inj.mark_down(p, now);
            (inj.recovery(), inj.repair_in())
        };
        queue.push(now + repair_in, EventClass::Fault, Event::ProcRepaired(p));
        let had_holder = self.state.cluster.fail(p);
        self.state.fault_stats.proc_failures += 1;
        self.failures_now.push(p);
        if self.sink.enabled() {
            self.sink.record(&TraceRecord::Proc {
                t: now.secs(),
                proc: p,
                event: ProcEvent::Failed,
            });
        }
        if had_holder {
            let holder = self
                .state
                .jobs
                .iter()
                .find(|rt| {
                    matches!(rt.phase, Phase::Running { .. } | Phase::Draining)
                        && rt.assigned.as_ref().is_some_and(|s| s.contains(p))
                })
                .map(|rt| rt.job.id)
                .expect("cluster says a job holds the failed processor");
            self.kill_job(holder, false);
        }
        for id in self.state.suspended_on(p) {
            match recovery {
                RecoveryPolicy::WaitForRepair => {
                    let rt = &mut self.state.jobs[id.index()];
                    if rt.stranded_since.is_none() {
                        rt.stranded_since = Some(now);
                    }
                }
                RecoveryPolicy::Resubmit => self.kill_job(id, false),
                RecoveryPolicy::Remap => self.state.jobs[id.index()].remap = true,
            }
        }
    }

    /// A processor came back: return it to the free pool, close stranded
    /// accounting for jobs whose reserved set is whole again, and schedule
    /// the processor's next failure.
    fn on_proc_repaired(&mut self, p: u32, queue: &mut EventQueue<Event>) {
        if self.faults.is_none() {
            return;
        }
        let now = self.state.now;
        let next_failure_in = {
            let inj = self.faults.as_mut().expect("checked above");
            inj.mark_up(p, now);
            (self.state.incomplete > 0)
                .then(|| inj.next_failure_in())
                .flatten()
        };
        self.state.cluster.repair(p);
        self.state.fault_stats.proc_repairs += 1;
        self.repairs_now.push(p);
        if self.sink.enabled() {
            self.sink.record(&TraceRecord::Proc {
                t: now.secs(),
                proc: p,
                event: ProcEvent::Repaired,
            });
        }
        // Jobs stranded on p whose whole set is up again stop being
        // stranded (they still wait for the scheduler to resume them).
        let down = self.state.cluster.down_set().clone();
        for i in 0..self.state.jobs.len() {
            let rt = &mut self.state.jobs[i];
            if let Some(since) = rt.stranded_since {
                if rt.assigned.as_ref().is_some_and(|s| s.is_disjoint(&down)) {
                    rt.stranded_since = None;
                    self.state.fault_stats.stranded_secs += now - since;
                }
            }
        }
        if let Some(dt) = next_failure_in {
            queue.push(now + dt, EventClass::Fault, Event::ProcFailed(p));
        }
    }

    /// An injected job crash fired (if its dispatch is still current).
    fn on_crash(&mut self, id: JobId, epoch: u32) {
        let rt = &self.state.jobs[id.index()];
        if rt.epoch != epoch || !matches!(rt.phase, Phase::Running { .. }) {
            return; // stale: the dispatch was preempted or completed
        }
        self.state.jobs[id.index()].crash_after = None; // crashes once
        self.kill_job(id, true);
    }

    /// Shared kill path: state mechanics, counters, trace record.
    fn kill_job(&mut self, id: JobId, crash: bool) {
        let _lost = self.state.kill(id);
        if crash {
            self.state.fault_stats.job_crashes += 1;
        } else {
            self.state.fault_stats.jobs_killed += 1;
        }
        if self.sink.enabled() {
            self.emit_job(id, JobEvent::Kill, false);
        }
    }
}

impl<S: TraceSink> Simulation for Simulator<S> {
    type Event = Event;

    fn handle_batch(
        &mut self,
        now: SimTime,
        batch: &mut Vec<Event>,
        queue: &mut EventQueue<Event>,
    ) {
        self.state.now = now;
        self.arrivals_now.clear();
        self.failures_now.clear();
        self.repairs_now.clear();
        let mut tick = false;
        for ev in batch.drain(..) {
            match ev {
                Event::Arrival(id) => {
                    let rt = &mut self.state.jobs[id.index()];
                    debug_assert_eq!(rt.phase, Phase::NotArrived);
                    rt.phase = Phase::Queued;
                    rt.wait_since = now;
                    self.state.queued.push(id);
                    self.arrivals_now.push(id);
                    if self.sink.enabled() {
                        self.emit_job(id, JobEvent::Arrival, false);
                    }
                }
                Event::Completion { job, epoch } => {
                    let rt = &self.state.jobs[job.index()];
                    if rt.epoch == epoch && matches!(rt.phase, Phase::Running { .. }) {
                        let outcome = self.state.complete(job);
                        self.policy.on_completion(&outcome);
                        if self.sink.enabled() {
                            self.emit_job(job, JobEvent::Complete, false);
                        }
                    }
                    // else: stale completion from before a suspension.
                }
                Event::DrainDone { job, epoch } => {
                    let rt = &self.state.jobs[job.index()];
                    if rt.epoch == epoch && rt.phase == Phase::Draining {
                        self.state.drain_done(job);
                        if self.sink.enabled() {
                            self.emit_job(job, JobEvent::Drain, false);
                        }
                    }
                    // else: the drain was cut short by a kill.
                }
                Event::ProcFailed(p) => self.on_proc_failed(p, queue),
                Event::ProcRepaired(p) => self.on_proc_repaired(p, queue),
                Event::Crash { job, epoch } => self.on_crash(job, epoch),
                Event::Tick => {
                    if let Some(t) = &mut self.ticker {
                        tick |= t.fired(now);
                    }
                }
            }
        }

        // One decision per instant, with complete knowledge of the instant.
        let arrivals = std::mem::take(&mut self.arrivals_now);
        let failures = std::mem::take(&mut self.failures_now);
        let repairs = std::mem::take(&mut self.repairs_now);
        self.actions.clear();
        {
            // The sink is lent (type-erased) into the decision context so
            // policies can record *why* they acted; the borrow ends before
            // `apply` emits the lifecycle records those actions cause.
            let tracer = TraceCtx::new(&mut self.sink);
            let ctx = DecideCtx {
                arrivals: &arrivals,
                tick,
                failures: &failures,
                repairs: &repairs,
                trace: &tracer,
            };
            self.policy.decide(&self.state, &ctx, &mut self.actions);
        }
        self.apply(queue);
        self.arrivals_now = arrivals;
        self.failures_now = failures;
        self.repairs_now = repairs;

        // Per-tick gauges, after the instant's decisions have been applied.
        if tick && self.sink.enabled() {
            self.sink.record(&TraceRecord::Gauge {
                t: now.secs(),
                queued: self.state.queued.len() as u32,
                idle: self.state.free_count(),
                draining: self.state.draining_set().count(),
                suspended: self.state.suspended.len() as u32,
                running: self.state.running.len() as u32,
            });
        }

        // Keep ticks flowing while any arrived job is unfinished.
        let work_pending = !self.state.queued.is_empty()
            || !self.state.suspended.is_empty()
            || !self.state.running.is_empty()
            || self.state.jobs.iter().any(|rt| rt.phase == Phase::Draining);
        if work_pending {
            if let Some(t) = &mut self.ticker {
                if let Some(at) = t.arm(now) {
                    queue.push(at, EventClass::Tick, Event::Tick);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal FCFS-like policy used to exercise the mechanics.
    struct GreedyFifo;
    impl Policy for GreedyFifo {
        fn name(&self) -> String {
            "greedy-fifo-test".into()
        }
        fn decide(&mut self, state: &SimState, _ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
            let mut free = state.free_count();
            for &id in state.queued() {
                let need = state.job(id).procs;
                if need <= free {
                    free -= need;
                    actions.push(Action::Start(id));
                }
            }
        }
    }

    /// A policy that suspends the sole running job when a new one arrives,
    /// then resumes it when the machine frees up. Exercises the suspend /
    /// drain / resume path.
    struct PreemptOnArrival;
    impl Policy for PreemptOnArrival {
        fn name(&self) -> String {
            "preempt-on-arrival-test".into()
        }
        fn needs_tick(&self) -> bool {
            true
        }
        fn decide(&mut self, state: &SimState, ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
            // New arrival preempts everything currently running.
            if !ctx.arrivals.is_empty() {
                for &r in state.running() {
                    actions.push(Action::Suspend(r));
                }
            }
            let mut free = state.free_count()
                + if !ctx.arrivals.is_empty() {
                    state
                        .running()
                        .iter()
                        .map(|&r| state.job(r).procs)
                        .sum::<u32>()
                } else {
                    0
                };
            for &id in state.queued() {
                if state.job(id).procs <= free {
                    free -= state.job(id).procs;
                    actions.push(Action::Start(id));
                }
            }
            // Resume suspended jobs when their processors are free and no
            // queued job wants to go first.
            if ctx.arrivals.is_empty() {
                for &id in state.suspended() {
                    if state
                        .assigned_set(id)
                        .is_some_and(|s| s.is_subset(state.free_set()))
                    {
                        actions.push(Action::Resume(id));
                    }
                }
            }
        }
    }

    fn run_jobs(jobs: Vec<Job>, procs: u32, policy: Box<dyn Policy>) -> SimResult {
        Simulator::new(jobs, procs, policy).run()
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = vec![Job::new(0, 5, 100, 100, 4)];
        let res = run_jobs(jobs, 8, Box::new(GreedyFifo));
        assert_eq!(res.outcomes.len(), 1);
        let o = &res.outcomes[0];
        assert_eq!(o.first_start.secs(), 5);
        assert_eq!(o.completion.secs(), 105);
        assert_eq!(o.wait(), 0);
        assert_eq!(o.slowdown(), 1.0);
        assert_eq!(res.preemptions, 0);
        assert_eq!(res.dropped_actions, 0);
    }

    #[test]
    fn queueing_when_machine_full() {
        // Two jobs each needing the whole machine.
        let jobs = vec![Job::new(0, 0, 100, 100, 8), Job::new(1, 0, 100, 100, 8)];
        let res = run_jobs(jobs, 8, Box::new(GreedyFifo));
        let o1 = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(o1.first_start.secs(), 100);
        assert_eq!(o1.completion.secs(), 200);
        assert_eq!(o1.wait(), 100);
        assert_eq!(res.makespan, 200);
        assert!((res.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_jobs_share_machine() {
        let jobs = vec![
            Job::new(0, 0, 100, 100, 4),
            Job::new(1, 0, 100, 100, 4),
            Job::new(2, 0, 100, 100, 4),
        ];
        let res = run_jobs(jobs, 8, Box::new(GreedyFifo));
        // Two run together, the third waits.
        let waits: Vec<i64> = {
            let mut v: Vec<i64> = res.outcomes.iter().map(|o| o.wait()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(waits, vec![0, 0, 100]);
    }

    #[test]
    fn suspension_roundtrip_zero_overhead() {
        // Long job starts; short job arrives at t=10 and preempts it.
        let jobs = vec![Job::new(0, 0, 1_000, 1_000, 8), Job::new(1, 10, 50, 50, 8)];
        let res = run_jobs(jobs, 8, Box::new(PreemptOnArrival));
        let long = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let short = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert_eq!(short.first_start.secs(), 10, "short job started instantly");
        assert_eq!(short.completion.secs(), 60);
        assert_eq!(long.suspensions, 1);
        // Long ran [0,10) (10 s done, 990 left), was suspended [10,60),
        // and resumed at the short job's completion instant t=60.
        assert_eq!(long.completion.secs(), 1_050);
        assert_eq!(long.wait(), 50);
        assert_eq!(res.preemptions, 1);
        assert_eq!(res.dropped_actions, 0);
    }

    #[test]
    fn suspension_with_overhead_charges_drain_and_reload() {
        let mut j0 = Job::new(0, 0, 1_000, 1_000, 8);
        j0.mem_mb = 1_600; // 200 MB/proc -> 100 s drain at 2 MB/s
        let mut j1 = Job::new(1, 10, 50, 50, 8);
        j1.mem_mb = 1_600;
        let res = Simulator::with_overhead(
            vec![j0, j1],
            8,
            Box::new(PreemptOnArrival),
            OverheadModel::paper(),
        )
        .run();
        let long = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let short = res.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        // Suspend at t=10, drain until t=110; short starts at t=110.
        assert_eq!(short.first_start.secs(), 110);
        assert_eq!(short.completion.secs(), 160);
        // Long resumes at t=160, reloads 100 s, computes remaining 990 s.
        assert_eq!(long.completion.secs(), 160 + 100 + 990);
        assert_eq!(long.overhead, 200);
        assert_eq!(long.suspensions, 1);
    }

    #[test]
    fn resume_requires_exact_processors() {
        // Machine of 8: long job on all 8; preempted by short 8-proc job;
        // then a 4-proc job sneaks in — the long job cannot resume until
        // the 4-proc job is out (its original set overlaps).
        let jobs = vec![
            Job::new(0, 0, 1_000, 1_000, 8),
            Job::new(1, 10, 500, 500, 8),
            Job::new(2, 20, 100, 100, 4),
        ];
        let res = run_jobs(jobs, 8, Box::new(PreemptOnArrival));
        assert_eq!(res.outcomes.len(), 3);
        let long = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        // j1 runs [10,510) after preempting both j0 and... j2 arrives at 20
        // preempting j1; j2 runs [20,120); at 120 j1 can resume (its set is
        // all 8) — wait, j1 was suspended at 20 having run [10,20).
        // Timeline: j0 [0,10) preempted; j1 [10,20) preempted; j2 [20,120);
        // at 120 both j0 (needs all 8) and j1 (needs all 8) are resumable;
        // suspension order resumes j0 first... our test policy resumes in
        // suspended-list order: j0 then j1 both want all 8 procs — only the
        // first fits.
        assert_eq!(long.suspensions, 1);
        assert!(long.completion.secs() >= 1_000);
        // All work conserves: every job ran its full run time.
        for o in &res.outcomes {
            assert!(o.turnaround() >= o.run);
        }
    }

    #[test]
    fn xfactor_semantics() {
        let jobs = vec![Job::new(0, 0, 100, 200, 8), Job::new(1, 0, 100, 100, 8)];
        let mut sim = Simulator::new(jobs, 8, Box::new(GreedyFifo));
        // Drive manually: push arrivals, advance to t=0.
        let mut queue = EventQueue::with_capacity(4);
        for rt in &sim.state.jobs {
            queue.push(
                rt.job.submit,
                EventClass::Arrival,
                Event::Arrival(rt.job.id),
            );
        }
        let mut engine = Engine::new().with_horizon(SimTime::new(50));
        let _ = engine.run(&mut sim, &mut queue);
        // At t=0 job0 started (8 procs), job1 queued. Engine stopped at
        // horizon; state.now is 0 — xfactor of the queued job at now=0:
        assert_eq!(sim.state.xfactor(JobId(1)), 1.0);
        // Manually advance the clock to probe the waiting growth.
        sim.state.now = SimTime::new(50);
        assert!(
            (sim.state.xfactor(JobId(1)) - 1.5).abs() < 1e-12,
            "waited 50 of est 100"
        );
        // The running job's xfactor is frozen at 1.0 (it never waited).
        assert_eq!(sim.state.xfactor(JobId(0)), 1.0);
        // Instantaneous xfactor of the running job: (0 + 50)/50 = 1.
        assert!((sim.state.inst_xfactor(JobId(0)) - 1.0).abs() < 1e-12);
        // Instantaneous xfactor of the queued job: (50 + 0)/max(0,1) — huge.
        assert!(sim.state.inst_xfactor(JobId(1)) > 50.0 - 1e9_f64.recip());
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_job_rejected() {
        let jobs = vec![Job::new(0, 0, 10, 10, 16)];
        let _ = Simulator::new(jobs, 8, Box::new(GreedyFifo));
    }

    #[test]
    fn utilization_accounts_productive_work_only() {
        let mut j0 = Job::new(0, 0, 100, 100, 8);
        j0.mem_mb = 8 * 1_024; // 512 s drain per transition
        let mut j1 = Job::new(1, 10, 100, 100, 8);
        j1.mem_mb = 8 * 1_024;
        let res = Simulator::with_overhead(
            vec![j0, j1],
            8,
            Box::new(PreemptOnArrival),
            OverheadModel::paper(),
        )
        .run();
        // Productive work = 1600 proc-s; makespan far larger due to drains.
        assert!(
            res.utilization < 0.7,
            "overhead must not count as useful work"
        );
        assert_eq!(res.preemptions, 1);
    }

    #[test]
    fn trace_with_identical_arrival_instants_is_deterministic() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, 0, 50 + i as i64, 50 + i as i64, 2))
            .collect();
        let a = run_jobs(jobs.clone(), 8, Box::new(GreedyFifo));
        let b = run_jobs(jobs, 8, Box::new(GreedyFifo));
        let key = |r: &SimResult| {
            r.outcomes
                .iter()
                .map(|o| (o.id, o.completion))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }
}
