//! Deterministic fault injection.
//!
//! The paper's local-preemption model — a suspended job may only restart
//! on *exactly* its original processors — is maximally fragile to
//! processor failure: one dead node strands every job suspended on it.
//! This module supplies the failure process; the simulator in
//! [`crate::sim`] applies the fallout (killing running holders, stranding
//! suspended jobs) under a configurable [`RecoveryPolicy`].
//!
//! Failures are generated from the in-tree deterministic [`SimRng`]: each
//! processor alternates exponentially-distributed up intervals (mean
//! [`FaultModel::mtbf`]) and down intervals (mean [`FaultModel::mttr`]).
//! Optionally, each job independently crashes once mid-run with
//! probability [`FaultModel::job_crash`], at a uniformly drawn fraction of
//! its work. Every draw is a pure function of the fault seed and the
//! (deterministic) event order, so fault-injected runs replay exactly.

use sps_simcore::{Secs, SimRng, SimTime};

/// What happens to a suspended or draining job whose reserved processor
/// set includes a processor that went down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Paper-faithful: the job stays suspended and re-enters on its
    /// original set once the processor is repaired. Maximally local,
    /// maximally fragile — the job is *stranded* for the whole repair.
    #[default]
    WaitForRepair,
    /// Kill the stranded job: all accumulated work is lost and the job
    /// re-enters the queue from scratch.
    Resubmit,
    /// Relax the paper's same-processors rule: the scheduler may restart
    /// the stranded job on any equally-sized free set (migration).
    /// Quantifies what the locality restriction costs under failures.
    Remap,
}

impl RecoveryPolicy {
    /// Stable spec string (CLI flag value, config JSON).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::WaitForRepair => "wait",
            RecoveryPolicy::Resubmit => "resubmit",
            RecoveryPolicy::Remap => "remap",
        }
    }

    /// Parse a spec string produced by [`RecoveryPolicy::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "wait" | "wait-for-repair" => Some(RecoveryPolicy::WaitForRepair),
            "resubmit" => Some(RecoveryPolicy::Resubmit),
            "remap" => Some(RecoveryPolicy::Remap),
            _ => None,
        }
    }

    /// All policies, for sweeps and usage text.
    pub const ALL: [RecoveryPolicy; 3] = [
        RecoveryPolicy::WaitForRepair,
        RecoveryPolicy::Resubmit,
        RecoveryPolicy::Remap,
    ];
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A recovery-policy spec string that [`RecoveryPolicy::from_str`]
/// rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRecoveryError {
    spec: String,
}

impl std::fmt::Display for ParseRecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown recovery policy {:?}: expected wait | resubmit | remap",
            self.spec
        )
    }
}

impl std::error::Error for ParseRecoveryError {}

impl std::str::FromStr for RecoveryPolicy {
    type Err = ParseRecoveryError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        RecoveryPolicy::from_name(spec.trim())
            .ok_or_else(|| ParseRecoveryError { spec: spec.into() })
    }
}

/// Configuration of the failure process. [`FaultModel::none`] (the
/// default) injects nothing and leaves every simulation bit-identical to
/// a build without this module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures per processor, seconds. `None` disables
    /// processor faults entirely.
    pub mtbf: Option<Secs>,
    /// Mean time to repair a failed processor, seconds.
    pub mttr: Secs,
    /// Recovery policy for stranded suspended/draining jobs.
    pub recovery: RecoveryPolicy,
    /// Probability that a job crashes once mid-run (work lost, job
    /// resubmitted). `0.0` disables job-crash faults.
    pub job_crash: f64,
    /// Seed of the fault stream, independent of the workload seed.
    pub seed: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Default mean time to repair: 30 minutes.
pub const DEFAULT_MTTR: Secs = 1_800;

impl FaultModel {
    /// No faults of any kind.
    pub fn none() -> Self {
        FaultModel {
            mtbf: None,
            mttr: DEFAULT_MTTR,
            recovery: RecoveryPolicy::WaitForRepair,
            job_crash: 0.0,
            seed: 0,
        }
    }

    /// Processor faults with the given per-processor MTBF/MTTR (seconds).
    pub fn proc_faults(mtbf: Secs, mttr: Secs, seed: u64) -> Self {
        assert!(mtbf > 0, "mtbf must be positive");
        assert!(mttr > 0, "mttr must be positive");
        FaultModel {
            mtbf: Some(mtbf),
            mttr,
            recovery: RecoveryPolicy::WaitForRepair,
            job_crash: 0.0,
            seed,
        }
    }

    /// Set the recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the per-job crash probability (builder style).
    pub fn with_job_crash(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.job_crash = p;
        self
    }

    /// Set the fault-process RNG seed (builder style).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this model injects anything at all. A disabled model must
    /// leave simulations bit-identical to pre-fault builds.
    pub fn enabled(&self) -> bool {
        self.mtbf.is_some_and(|m| m > 0) || self.job_crash > 0.0
    }
}

/// The live failure process: one RNG, per-processor downtime bookkeeping.
/// Owned by the simulator; draws happen in deterministic event order.
#[derive(Debug)]
pub struct FaultInjector {
    model: FaultModel,
    rng: SimRng,
    /// When each currently-down processor failed (downtime accounting).
    down_since: Vec<Option<SimTime>>,
    /// Accumulated processor downtime, proc-seconds.
    downtime: Secs,
}

impl FaultInjector {
    /// Build the injector for a `procs`-processor machine.
    pub fn new(model: FaultModel, procs: u32) -> Self {
        let rng = SimRng::seed_from_u64(model.seed);
        FaultInjector {
            model,
            rng,
            down_since: vec![None; procs as usize],
            downtime: 0,
        }
    }

    /// The configuration in force.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// The configured recovery policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.model.recovery
    }

    /// Exponential draw with the given mean, clamped to at least one
    /// second (the simulation is second-granular).
    fn exp_draw(&mut self, mean: Secs) -> Secs {
        let u = self.rng.next_f64();
        let secs = -(mean as f64) * (1.0 - u).ln();
        (secs.round() as Secs).max(1)
    }

    /// Time until the next failure of a processor, or `None` when
    /// processor faults are disabled.
    pub fn next_failure_in(&mut self) -> Option<Secs> {
        let mtbf = self.model.mtbf.filter(|&m| m > 0)?;
        Some(self.exp_draw(mtbf))
    }

    /// Time until a just-failed processor is repaired.
    pub fn repair_in(&mut self) -> Secs {
        self.exp_draw(self.model.mttr.max(1))
    }

    /// Decide whether a job crashes, and if so after how many seconds of
    /// executed work (uniform over its run time). Drawn once per job at
    /// simulation start so the decision is independent of scheduling.
    pub fn job_crash_after(&mut self, run: Secs) -> Option<Secs> {
        if self.model.job_crash <= 0.0 {
            return None;
        }
        let crashes = self.rng.chance(self.model.job_crash);
        let frac = self.rng.next_f64();
        if !crashes {
            return None;
        }
        // Uniform in [1, run]: the job gets at least one second in.
        Some(((frac * run as f64).round() as Secs).clamp(1, run.max(1)))
    }

    /// Record that processor `p` went down at `now`.
    pub fn mark_down(&mut self, p: u32, now: SimTime) {
        self.down_since[p as usize] = Some(now);
    }

    /// Record that processor `p` came back at `now`, accumulating its
    /// downtime.
    pub fn mark_up(&mut self, p: u32, now: SimTime) {
        if let Some(since) = self.down_since[p as usize].take() {
            self.downtime += now - since;
        }
    }

    /// Total accumulated processor downtime in proc-seconds, counting
    /// still-down processors up to `now`.
    pub fn downtime_at(&self, now: SimTime) -> Secs {
        let open: Secs = self
            .down_since
            .iter()
            .flatten()
            .map(|&since| now - since)
            .sum();
        self.downtime + open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled() {
        assert!(!FaultModel::none().enabled());
        assert!(FaultModel::proc_faults(1_000, 100, 1).enabled());
        assert!(FaultModel::none().with_job_crash(0.1).enabled());
    }

    #[test]
    fn recovery_names_round_trip() {
        for p in RecoveryPolicy::ALL {
            assert_eq!(RecoveryPolicy::from_name(p.name()), Some(p));
            assert_eq!(p.name().parse::<RecoveryPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(RecoveryPolicy::from_name("nope"), None);
        for bad in ["", "requeue", "wait for repair"] {
            let err = bad.parse::<RecoveryPolicy>().unwrap_err();
            assert!(
                err.to_string().contains("unknown recovery policy"),
                "{bad:?}"
            );
        }
        assert_eq!(
            " remap ".parse::<RecoveryPolicy>().unwrap(),
            RecoveryPolicy::Remap
        );
    }

    #[test]
    fn draws_are_deterministic_and_positive() {
        let model = FaultModel::proc_faults(10_000, 600, 42);
        let mut a = FaultInjector::new(model, 8);
        let mut b = FaultInjector::new(model, 8);
        for _ in 0..1_000 {
            let fa = a.next_failure_in().unwrap();
            let fb = b.next_failure_in().unwrap();
            assert_eq!(fa, fb);
            assert!(fa >= 1);
            let ra = a.repair_in();
            assert_eq!(ra, b.repair_in());
            assert!(ra >= 1);
        }
    }

    #[test]
    fn exponential_draw_mean_is_close() {
        let model = FaultModel::proc_faults(50_000, 600, 7);
        let mut inj = FaultInjector::new(model, 1);
        let n = 20_000;
        let sum: i64 = (0..n).map(|_| inj.next_failure_in().unwrap()).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 50_000.0).abs() < 1_500.0,
            "sample mean {mean} too far from 50000"
        );
    }

    #[test]
    fn downtime_accounting() {
        let mut inj = FaultInjector::new(FaultModel::proc_faults(1_000, 100, 1), 4);
        inj.mark_down(2, SimTime::new(100));
        inj.mark_down(3, SimTime::new(150));
        assert_eq!(inj.downtime_at(SimTime::new(200)), 100 + 50);
        inj.mark_up(2, SimTime::new(300));
        assert_eq!(inj.downtime_at(SimTime::new(300)), 200 + 150);
        inj.mark_up(3, SimTime::new(400));
        assert_eq!(inj.downtime_at(SimTime::new(500)), 200 + 250);
    }

    #[test]
    fn job_crash_disabled_draws_nothing() {
        let mut inj = FaultInjector::new(FaultModel::none(), 4);
        for _ in 0..100 {
            assert_eq!(inj.job_crash_after(1_000), None);
        }
    }

    #[test]
    fn job_crash_always_within_run() {
        let model = FaultModel::none().with_job_crash(1.0);
        let mut inj = FaultInjector::new(FaultModel { seed: 3, ..model }, 4);
        for _ in 0..500 {
            let at = inj.job_crash_after(777).expect("p=1 always crashes");
            assert!((1..=777).contains(&at));
        }
    }
}
