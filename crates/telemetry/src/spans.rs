//! Hierarchical span profiler for the run loop.
//!
//! The profiler attributes wall clock to named run-loop phases (event
//! drain, decide, dispatch, lifecycle, checkpoint I/O, trace-sink
//! writes) with the same zero-cost-when-disabled discipline as the
//! metric registry: the simulator holds an `Option<SpanProfiler>`, every
//! instrumentation site is guarded by an `is_some()` test cached at the
//! top of the batch handler, and the recording bodies live in `#[cold]
//! #[inline(never)]` helpers — so the default `None` path's codegen is
//! identical to the unprofiled kernel, re-checked by the `--guard` bench
//! gate.
//!
//! Two outputs per run: an online [`PhaseProfile`] (per-phase counts,
//! totals, and a log2 latency histogram exact enough for p50/p99) that
//! folds into `KernelStats`/`RunSummary`, and — only when timeline
//! capture is requested — a bounded [`SpanEvent`] log for the Chrome
//! trace-event / Perfetto exporter in [`crate::timeline`].

use std::time::Instant;

/// A named run-loop phase the profiler attributes wall time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanPhase {
    /// Draining the instant's event batch (arrival/completion/drain/
    /// fault/tick bookkeeping).
    EventDrain = 0,
    /// The policy `decide()` call itself.
    Decide = 1,
    /// Applying the decide's actions to the machine (dispatch, resume,
    /// suspend mechanics).
    Dispatch = 2,
    /// Lazy source pulls and admission filtering for the instant.
    Lifecycle = 3,
    /// Checkpoint-image accounting on suspension (checkpointing
    /// preemption modes only).
    CheckpointIo = 4,
    /// End-of-run trace sink writes and flush.
    TraceSink = 5,
}

/// Number of distinct phases (array dimension in [`PhaseProfile`]).
pub const SPAN_PHASES: usize = 6;

/// Log2 histogram buckets per phase — mirrors the registry's
/// `Buckets::Log2 { n: 40 }` layout used for decide latency, so the
/// two surfaces report comparable quantiles.
const SPAN_BUCKETS: usize = 40;

impl SpanPhase {
    /// Every phase, in `repr` order.
    pub const ALL: [SpanPhase; SPAN_PHASES] = [
        SpanPhase::EventDrain,
        SpanPhase::Decide,
        SpanPhase::Dispatch,
        SpanPhase::Lifecycle,
        SpanPhase::CheckpointIo,
        SpanPhase::TraceSink,
    ];

    /// Stable display name (also the span name in timeline exports).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::EventDrain => "event_drain",
            SpanPhase::Decide => "decide",
            SpanPhase::Dispatch => "dispatch",
            SpanPhase::Lifecycle => "lifecycle",
            SpanPhase::CheckpointIo => "checkpoint_io",
            SpanPhase::TraceSink => "trace_sink",
        }
    }
}

/// Bucket index for a nanosecond duration: slot 0 holds `[0, 1)`, slot
/// `i` holds `[2^(i-1), 2^i)`, the last slot absorbs the tail — the
/// exact indexing rule of the registry's log2 histograms.
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    (ns.max(1).ilog2() as usize + 1).min(SPAN_BUCKETS - 1)
}

/// Upper bound of bucket `i` in nanoseconds (`u64::MAX` for the tail).
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= SPAN_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Online per-phase wall-clock profile: counts, totals, and a log2
/// latency histogram per phase. Fixed-size and `Copy`, so it rides
/// `KernelStats` into `RunSummary` without allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseProfile {
    /// Spans recorded per phase.
    pub counts: [u64; SPAN_PHASES],
    /// Total nanoseconds per phase.
    pub total_ns: [u64; SPAN_PHASES],
    /// Log2 duration histogram per phase (bucket `i` = `[2^(i-1), 2^i)`
    /// ns, slot 0 = sub-nanosecond).
    pub hist: [[u32; SPAN_BUCKETS]; SPAN_PHASES],
}

// Derived `Default` is unavailable: std only implements `Default` for
// arrays up to 32 elements, and the histogram rows have 40.
impl Default for PhaseProfile {
    fn default() -> Self {
        PhaseProfile {
            counts: [0; SPAN_PHASES],
            total_ns: [0; SPAN_PHASES],
            hist: [[0; SPAN_BUCKETS]; SPAN_PHASES],
        }
    }
}

impl PhaseProfile {
    /// Fold one span duration into the profile.
    pub fn record(&mut self, phase: SpanPhase, ns: u64) {
        let p = phase as usize;
        self.counts[p] += 1;
        self.total_ns[p] += ns;
        self.hist[p][bucket_index(ns)] += 1;
    }

    /// Merge another profile into this one (sweep-level aggregation).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for p in 0..SPAN_PHASES {
            self.counts[p] += other.counts[p];
            self.total_ns[p] += other.total_ns[p];
            for b in 0..SPAN_BUCKETS {
                self.hist[p][b] += other.hist[p][b];
            }
        }
    }

    /// Spans recorded for `phase`.
    pub fn count(&self, phase: SpanPhase) -> u64 {
        self.counts[phase as usize]
    }

    /// Total nanoseconds attributed to `phase`.
    pub fn total_ns(&self, phase: SpanPhase) -> u64 {
        self.total_ns[phase as usize]
    }

    /// Mean span duration for `phase` in nanoseconds, `None` when the
    /// phase recorded nothing.
    pub fn mean_ns(&self, phase: SpanPhase) -> Option<f64> {
        let p = phase as usize;
        (self.counts[p] > 0).then(|| self.total_ns[p] as f64 / self.counts[p] as f64)
    }

    /// Histogram quantile for `phase`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th sample — the same estimator as
    /// the registry's `hist_quantile`, so p99 here and p99 there agree.
    pub fn quantile_ns(&self, phase: SpanPhase, q: f64) -> Option<u64> {
        let p = phase as usize;
        let count = self.counts[p];
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.hist[p].iter().enumerate() {
            seen += n as u64;
            if seen >= target {
                return Some(bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Whether any span was recorded at all.
    pub fn any(&self) -> bool {
        self.counts.iter().any(|&c| c > 0)
    }
}

/// One timeline span: a phase, its start offset from the profiler epoch,
/// and its duration (both nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanEvent {
    pub phase: SpanPhase,
    /// Nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// Default per-run cap on retained timeline spans. Profiles keep
/// folding past the cap; only the event log stops growing.
pub const DEFAULT_SPAN_CAP: usize = 16_384;

/// The per-run span recorder: an epoch, the online [`PhaseProfile`],
/// and (when timeline capture is on) a bounded [`SpanEvent`] log.
#[derive(Debug)]
pub struct SpanProfiler {
    epoch: Instant,
    profile: PhaseProfile,
    events: Vec<SpanEvent>,
    cap: usize,
    dropped: u64,
    timeline: bool,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// Profile-only recorder: folds per-phase statistics, retains no
    /// event log.
    pub fn new() -> Self {
        SpanProfiler {
            epoch: Instant::now(),
            profile: PhaseProfile::default(),
            events: Vec::new(),
            cap: 0,
            dropped: 0,
            timeline: false,
        }
    }

    /// Recorder that additionally retains up to `cap` timeline spans
    /// for the Perfetto exporter (0 means [`DEFAULT_SPAN_CAP`]).
    pub fn with_timeline(cap: usize) -> Self {
        let cap = if cap == 0 { DEFAULT_SPAN_CAP } else { cap };
        SpanProfiler {
            epoch: Instant::now(),
            profile: PhaseProfile::default(),
            events: Vec::with_capacity(cap.min(1024)),
            cap,
            dropped: 0,
            timeline: true,
        }
    }

    /// Re-anchor the epoch (sweeps share one epoch across workers so
    /// every lane's timestamps are globally comparable).
    pub fn with_epoch(mut self, epoch: Instant) -> Self {
        self.epoch = epoch;
        self
    }

    /// Close a span opened at `started` and attribute it to `phase`.
    pub fn record(&mut self, phase: SpanPhase, started: Instant) {
        let dur_ns = started.elapsed().as_nanos() as u64;
        self.profile.record(phase, dur_ns);
        if self.timeline {
            if self.events.len() < self.cap {
                let start_ns = started.duration_since(self.epoch).as_nanos() as u64;
                self.events.push(SpanEvent {
                    phase,
                    start_ns,
                    dur_ns,
                });
            } else {
                self.dropped += 1;
            }
        }
    }

    /// The online profile.
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Whether timeline capture is on.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline
    }

    /// Timeline spans dropped once the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Take the retained timeline spans (empty unless timeline capture
    /// was requested).
    pub fn take_events(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_mirrors_registry_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1); // [1, 2)
        assert_eq!(bucket_index(2), 2); // [2, 4)
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3); // [4, 8)
        assert_eq!(bucket_index(u64::MAX), SPAN_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 2);
        assert_eq!(bucket_upper(SPAN_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn profile_records_and_quantiles() {
        let mut p = PhaseProfile::default();
        // 9 fast decides at ~100 ns, one slow one at ~1 µs.
        for _ in 0..9 {
            p.record(SpanPhase::Decide, 100);
        }
        p.record(SpanPhase::Decide, 1_000);
        assert_eq!(p.count(SpanPhase::Decide), 10);
        assert_eq!(p.total_ns(SpanPhase::Decide), 1_900);
        assert_eq!(p.mean_ns(SpanPhase::Decide), Some(190.0));
        // p50 lands in the [64, 128) bucket → upper bound 128.
        assert_eq!(p.quantile_ns(SpanPhase::Decide, 0.5), Some(128));
        // p99 must see the 1 µs outlier: [512, 1024) → 1024.
        assert_eq!(p.quantile_ns(SpanPhase::Decide, 0.99), Some(1024));
        assert_eq!(p.quantile_ns(SpanPhase::EventDrain, 0.5), None);
        assert!(p.any());
    }

    #[test]
    fn merge_sums_all_fields() {
        let mut a = PhaseProfile::default();
        let mut b = PhaseProfile::default();
        a.record(SpanPhase::EventDrain, 10);
        b.record(SpanPhase::EventDrain, 1_000_000);
        b.record(SpanPhase::TraceSink, 5);
        a.merge(&b);
        assert_eq!(a.count(SpanPhase::EventDrain), 2);
        assert_eq!(a.total_ns(SpanPhase::EventDrain), 1_000_010);
        assert_eq!(a.count(SpanPhase::TraceSink), 1);
    }

    #[test]
    fn profiler_without_timeline_keeps_no_events() {
        let mut prof = SpanProfiler::new();
        prof.record(SpanPhase::Decide, Instant::now());
        assert_eq!(prof.profile().count(SpanPhase::Decide), 1);
        assert!(prof.take_events().is_empty());
        assert!(!prof.timeline_enabled());
    }

    #[test]
    fn timeline_capture_caps_but_profile_continues() {
        let mut prof = SpanProfiler::with_timeline(2);
        for _ in 0..5 {
            prof.record(SpanPhase::Dispatch, Instant::now());
        }
        assert_eq!(prof.profile().count(SpanPhase::Dispatch), 5);
        assert_eq!(prof.dropped(), 3);
        let events = prof.take_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.phase == SpanPhase::Dispatch));
    }

    #[test]
    fn shared_epoch_orders_spans_globally() {
        let epoch = Instant::now();
        let mut prof = SpanProfiler::with_timeline(0).with_epoch(epoch);
        let t0 = Instant::now();
        prof.record(SpanPhase::EventDrain, t0);
        let t1 = Instant::now();
        prof.record(SpanPhase::Decide, t1);
        let events = prof.take_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].start_ns <= events[1].start_ns);
    }
}
