//! Online scheduler health detectors.
//!
//! Each detector folds observations as the simulation emits them — no
//! post-hoc trace scan — and produces typed [`HealthEvent`]s plus an
//! end-of-run [`HealthReport`]. Detectors consume **simulation-time**
//! signals only (never wall-clock), so their findings are bit-stable
//! run-to-run and across worker-thread counts.
//!
//! Three detectors ship:
//!
//! * **Starvation watch** — a queued job whose expansion factor
//!   `(wait + est) / est` crosses a threshold opens a starvation episode,
//!   recorded with its time of onset. Dispatch, completion, or kill closes
//!   the episode; episodes still open at end-of-run count as unresolved.
//! * **Thrash detector** — counts suspensions per job inside a sliding
//!   window; `cycles` suspensions within `window` seconds is the
//!   suspend/resume ping-pong that TSS's disable limits exist to prevent.
//! * **Capacity leak** — integrates claimed-but-idle processor-seconds
//!   (processors held by suspended jobs' claims while sitting in the free
//!   set). One event fires when the integral crosses a threshold; the
//!   final integral is always reported.

use std::collections::{HashMap, VecDeque};

/// Detector thresholds. Defaults are tuned for the paper's workloads
/// (SDSC/CTC-scale traces, seconds-granularity simulation time).
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// A queued job with xfactor at or above this opens a starvation episode.
    pub starvation_xfactor: f64,
    /// Number of suspensions within `thrash_window` that counts as thrash.
    pub thrash_cycles: u32,
    /// Sliding-window width for the thrash detector, in sim seconds.
    pub thrash_window: i64,
    /// Claimed-but-idle processor-seconds at which the leak event fires.
    pub leak_procsecs: i64,
    /// Cap on retained `HealthEvent`s (counters keep counting past it).
    pub max_events: usize,
    /// Warmup cutoff in sim seconds: detector inputs before this instant
    /// are discarded, so transient startup churn (an open-system run's
    /// fill phase) cannot open or feed steady-state episodes. Zero — the
    /// default — gates nothing and reproduces the pre-warmup findings
    /// bit for bit.
    pub warmup: i64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            starvation_xfactor: 10.0,
            thrash_cycles: 3,
            thrash_window: 4 * 3600,
            leak_procsecs: 128 * 3600,
            max_events: 1024,
            warmup: 0,
        }
    }
}

/// What a detector saw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HealthKind {
    /// A queued job crossed the starvation xfactor threshold.
    StarvationOnset,
    /// A job was suspended `value` times within the sliding window.
    Thrash,
    /// Claimed-but-idle processor-seconds crossed the configured budget.
    CapacityLeak,
}

impl HealthKind {
    pub fn name(&self) -> &'static str {
        match self {
            HealthKind::StarvationOnset => "starvation",
            HealthKind::Thrash => "thrash",
            HealthKind::CapacityLeak => "capacity_leak",
        }
    }

    pub fn from_name(name: &str) -> Option<HealthKind> {
        match name {
            "starvation" => Some(HealthKind::StarvationOnset),
            "thrash" => Some(HealthKind::Thrash),
            "capacity_leak" => Some(HealthKind::CapacityLeak),
            _ => None,
        }
    }
}

/// One typed detector firing, stamped with simulation time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthEvent {
    /// Simulation time of the firing (for starvation: time of onset).
    pub t: i64,
    pub kind: HealthKind,
    /// The job involved, if the finding is job-scoped.
    pub job: Option<u32>,
    /// Kind-specific magnitude: xfactor at onset, suspensions in window,
    /// or leaked processor-seconds.
    pub value: f64,
}

/// Fixed-size roll-up of detector activity; cheap to copy into results and
/// compare bit-for-bit in golden tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthSummary {
    /// Starvation episodes opened.
    pub starvation_onsets: u32,
    /// Episodes still open at end-of-run.
    pub unresolved_starvation: u32,
    /// Thrash firings (a job can fire more than once).
    pub thrash_events: u32,
    /// Distinct jobs that ever thrashed.
    pub thrashed_jobs: u32,
    /// Final claimed-but-idle integral, in processor-seconds.
    pub capacity_leak_procsecs: i64,
}

impl HealthSummary {
    /// True when no detector found anything.
    pub fn is_clean(&self) -> bool {
        self.starvation_onsets == 0 && self.thrash_events == 0
    }
}

/// Full end-of-run detector findings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    pub summary: HealthSummary,
    /// Worst xfactor seen at any starvation onset.
    pub worst_starvation_xf: f64,
    /// Largest in-window suspension count seen by the thrash detector.
    pub worst_thrash_count: u32,
    /// Retained events, in emission order (capped at `max_events`).
    pub events: Vec<HealthEvent>,
    /// True when the event log hit the retention cap.
    pub truncated: bool,
}

impl HealthReport {
    /// Multi-line human-readable rendering (also valid Markdown).
    pub fn render(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        if s.is_clean() && s.capacity_leak_procsecs == 0 {
            out.push_str("health: clean (no detector findings)\n");
            return out;
        }
        out.push_str(&format!(
            "health: {} starvation onset(s) ({} unresolved, worst xf {:.2}), \
             {} thrash event(s) across {} job(s) (worst {} suspensions in window), \
             claimed-idle {} proc-s\n",
            s.starvation_onsets,
            s.unresolved_starvation,
            self.worst_starvation_xf,
            s.thrash_events,
            s.thrashed_jobs,
            self.worst_thrash_count,
            s.capacity_leak_procsecs,
        ));
        let shown = self.events.len().min(12);
        for ev in &self.events[..shown] {
            let job = ev.job.map(|j| format!(" job {j}")).unwrap_or_default();
            out.push_str(&format!(
                "  - t={}{} {}: {:.2}\n",
                ev.t,
                job,
                ev.kind.name(),
                ev.value
            ));
        }
        if self.events.len() > shown || self.truncated {
            out.push_str(&format!(
                "  ... ({} events retained{})\n",
                self.events.len(),
                if self.truncated {
                    ", log truncated"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

/// Starvation watch: tracks open episodes per job.
#[derive(Default)]
pub(crate) struct StarvationWatch {
    active: HashMap<u32, f64>, // job -> worst xf this episode
    pub onsets: u32,
    pub worst_xf: f64,
}

impl StarvationWatch {
    /// A queued job was seen at or above the threshold. Returns an event on
    /// episode onset only.
    pub fn observe(&mut self, job: u32, t: i64, xf: f64) -> Option<HealthEvent> {
        if xf > self.worst_xf {
            self.worst_xf = xf;
        }
        match self.active.get_mut(&job) {
            Some(worst) => {
                if xf > *worst {
                    *worst = xf;
                }
                None
            }
            None => {
                self.active.insert(job, xf);
                self.onsets += 1;
                Some(HealthEvent {
                    t,
                    kind: HealthKind::StarvationOnset,
                    job: Some(job),
                    value: xf,
                })
            }
        }
    }

    /// The job left the queue (dispatch, completion, or kill).
    pub fn resolve(&mut self, job: u32) {
        self.active.remove(&job);
    }

    pub fn unresolved(&self) -> u32 {
        self.active.len() as u32
    }
}

/// Thrash detector: suspensions per job in a sliding window.
pub(crate) struct ThrashDetector {
    cycles: u32,
    window: i64,
    recent: HashMap<u32, VecDeque<i64>>,
    thrashed: HashMap<u32, ()>, // HashSet without an extra import
    pub events: u32,
    pub worst_count: u32,
}

impl ThrashDetector {
    pub fn new(cycles: u32, window: i64) -> Self {
        ThrashDetector {
            cycles: cycles.max(1),
            window,
            recent: HashMap::new(),
            thrashed: HashMap::new(),
            events: 0,
            worst_count: 0,
        }
    }

    pub fn on_suspend(&mut self, job: u32, t: i64) -> Option<HealthEvent> {
        let q = self.recent.entry(job).or_default();
        q.push_back(t);
        while let Some(&front) = q.front() {
            if front <= t - self.window {
                q.pop_front();
            } else {
                break;
            }
        }
        let n = q.len() as u32;
        if n >= self.cycles {
            q.clear(); // re-arm: a sustained ping-pong fires repeatedly, not per-suspend
            self.events += 1;
            if n > self.worst_count {
                self.worst_count = n;
            }
            self.thrashed.insert(job, ());
            Some(HealthEvent {
                t,
                kind: HealthKind::Thrash,
                job: Some(job),
                value: n as f64,
            })
        } else {
            None
        }
    }

    pub fn thrashed_jobs(&self) -> u32 {
        self.thrashed.len() as u32
    }
}

/// Capacity-leak integral over claimed-but-idle processors.
pub(crate) struct CapacityLeak {
    threshold: i64,
    prev_t: Option<i64>,
    prev_claimed_idle: u32,
    pub total: i64,
    fired: bool,
}

impl CapacityLeak {
    pub fn new(threshold: i64) -> Self {
        CapacityLeak {
            threshold,
            prev_t: None,
            prev_claimed_idle: 0,
            total: 0,
            fired: false,
        }
    }

    /// Step-function integration: the previous sample's level holds until
    /// this instant. Exact because claims only change inside observed
    /// instants.
    pub fn observe(&mut self, t: i64, claimed_idle: u32) -> Option<HealthEvent> {
        if let Some(pt) = self.prev_t {
            if t > pt {
                self.total += self.prev_claimed_idle as i64 * (t - pt);
            }
        }
        self.prev_t = Some(t);
        self.prev_claimed_idle = claimed_idle;
        self.check(t)
    }

    /// Close the integral at end-of-run.
    pub fn finish(&mut self, t_end: i64) -> Option<HealthEvent> {
        if let Some(pt) = self.prev_t {
            if t_end > pt {
                self.total += self.prev_claimed_idle as i64 * (t_end - pt);
            }
        }
        self.prev_t = Some(t_end);
        self.prev_claimed_idle = 0;
        self.check(t_end)
    }

    fn check(&mut self, t: i64) -> Option<HealthEvent> {
        if !self.fired && self.total >= self.threshold {
            self.fired = true;
            Some(HealthEvent {
                t,
                kind: HealthKind::CapacityLeak,
                job: None,
                value: self.total as f64,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starvation_fires_once_per_episode() {
        let mut w = StarvationWatch::default();
        let e1 = w.observe(7, 100, 10.5);
        assert!(e1.is_some());
        assert_eq!(e1.unwrap().t, 100);
        assert!(w.observe(7, 200, 12.0).is_none()); // same episode
        assert_eq!(w.onsets, 1);
        assert_eq!(w.worst_xf, 12.0);
        w.resolve(7);
        assert_eq!(w.unresolved(), 0);
        assert!(w.observe(7, 300, 11.0).is_some()); // new episode
        assert_eq!(w.onsets, 2);
    }

    #[test]
    fn thrash_needs_cycles_within_window() {
        let mut d = ThrashDetector::new(3, 1000);
        assert!(d.on_suspend(1, 0).is_none());
        assert!(d.on_suspend(1, 100).is_none());
        let e = d.on_suspend(1, 200);
        assert!(e.is_some());
        assert_eq!(e.unwrap().value, 3.0);
        assert_eq!(d.events, 1);
        assert_eq!(d.thrashed_jobs(), 1);
        // re-armed: needs three fresh suspensions again
        assert!(d.on_suspend(1, 300).is_none());
    }

    #[test]
    fn thrash_window_expires_old_suspensions() {
        let mut d = ThrashDetector::new(3, 1000);
        assert!(d.on_suspend(1, 0).is_none());
        assert!(d.on_suspend(1, 100).is_none());
        // 1200 is outside the window of both earlier suspensions
        assert!(d.on_suspend(1, 1200).is_none());
        assert_eq!(d.events, 0);
    }

    #[test]
    fn capacity_leak_integrates_step_function() {
        let mut c = CapacityLeak::new(100);
        assert!(c.observe(0, 10).is_none()); // level 10 holds from t=0
        assert!(c.observe(5, 0).is_none()); // 10 procs * 5 s = 50 < 100
        assert_eq!(c.total, 50);
        assert!(c.finish(50).is_none()); // level 0 adds nothing
        assert_eq!(c.total, 50);
    }

    #[test]
    fn capacity_leak_fires_at_threshold() {
        let mut c = CapacityLeak::new(100);
        assert!(c.observe(0, 10).is_none());
        let e = c.observe(10, 0); // 10 procs * 10 s = 100 >= threshold
        assert!(e.is_some());
        assert_eq!(e.unwrap().value, 100.0);
        assert!(c.finish(20).is_none()); // fires only once
        assert_eq!(c.total, 100);
    }

    #[test]
    fn capacity_leak_finish_closes_integral() {
        let mut c = CapacityLeak::new(i64::MAX);
        c.observe(0, 4);
        c.finish(25);
        assert_eq!(c.total, 100);
    }

    #[test]
    fn report_render_clean_and_dirty() {
        let clean = HealthReport::default();
        assert!(clean.render().contains("clean"));
        let dirty = HealthReport {
            summary: HealthSummary {
                thrash_events: 2,
                thrashed_jobs: 1,
                ..Default::default()
            },
            worst_thrash_count: 4,
            events: vec![HealthEvent {
                t: 5,
                kind: HealthKind::Thrash,
                job: Some(9),
                value: 4.0,
            }],
            ..Default::default()
        };
        let text = dirty.render();
        assert!(text.contains("2 thrash event(s)"));
        assert!(text.contains("t=5 job 9 thrash"));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            HealthKind::StarvationOnset,
            HealthKind::Thrash,
            HealthKind::CapacityLeak,
        ] {
            assert_eq!(HealthKind::from_name(k.name()), Some(k));
        }
        assert_eq!(HealthKind::from_name("nope"), None);
    }
}
