//! Static-handle metric registry: counters, gauges, and histograms.
//!
//! Metrics are declared once against a [`Schema`], which hands back typed
//! integer handles ([`CounterId`], [`GaugeId`], [`HistId`]). The hot path is
//! then a bounds-checked array index plus an add — no hashing, no string
//! lookups, no allocation. The registry renders to Prometheus text
//! exposition format and to a JSON snapshot.

use sps_trace::Json;

/// Handle for a monotonic counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u16);

/// Handle for a last-value gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(u16);

/// Handle for a histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(u16);

/// Bucket layout for a histogram.
#[derive(Clone, Copy, Debug)]
pub enum Buckets {
    /// `n` power-of-two buckets: slot 0 covers `[0, 1)`, slot `i` covers
    /// `[2^(i-1), 2^i)`, and the last slot absorbs everything above.
    Log2 { n: u32 },
    /// Explicit ascending upper bounds; an implicit `+Inf` overflow bucket
    /// is appended after the last bound.
    Fixed(&'static [f64]),
}

impl Buckets {
    fn slots(&self) -> usize {
        match self {
            Buckets::Log2 { n } => *n as usize,
            Buckets::Fixed(bounds) => bounds.len() + 1,
        }
    }

    fn index(&self, v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0; // negative, zero, or NaN all land in the first slot
        }
        match self {
            Buckets::Log2 { n } => {
                if v < 1.0 {
                    0
                } else {
                    let i = (v as u64).max(1).ilog2() as usize + 1;
                    i.min(*n as usize - 1)
                }
            }
            Buckets::Fixed(bounds) => match bounds.iter().position(|&b| v <= b) {
                Some(i) => i,
                None => bounds.len(),
            },
        }
    }

    /// Inclusive upper bound of slot `i` (`f64::INFINITY` for the last slot).
    pub fn upper_bound(&self, i: usize) -> f64 {
        match self {
            Buckets::Log2 { n } => {
                if i + 1 >= *n as usize {
                    f64::INFINITY
                } else {
                    (1u64 << i) as f64
                }
            }
            Buckets::Fixed(bounds) => bounds.get(i).copied().unwrap_or(f64::INFINITY),
        }
    }
}

struct Desc {
    name: &'static str,
    help: &'static str,
}

struct HistDesc {
    name: &'static str,
    help: &'static str,
    buckets: Buckets,
}

/// Declares the metric set. Filled once at startup; consumed by
/// [`Registry::new`].
#[derive(Default)]
pub struct Schema {
    counters: Vec<Desc>,
    gauges: Vec<Desc>,
    hists: Vec<HistDesc>,
}

impl Schema {
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        let id = CounterId(self.counters.len() as u16);
        self.counters.push(Desc { name, help });
        id
    }

    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> GaugeId {
        let id = GaugeId(self.gauges.len() as u16);
        self.gauges.push(Desc { name, help });
        id
    }

    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        buckets: Buckets,
    ) -> HistId {
        let id = HistId(self.hists.len() as u16);
        self.hists.push(HistDesc {
            name,
            help,
            buckets,
        });
        id
    }
}

struct Hist {
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    max: f64,
}

/// Flat metric storage addressed by the handles a [`Schema`] produced.
pub struct Registry {
    schema: Schema,
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<Hist>,
}

impl Registry {
    pub fn new(schema: Schema) -> Self {
        let counters = vec![0u64; schema.counters.len()];
        let gauges = vec![0f64; schema.gauges.len()];
        let hists = schema
            .hists
            .iter()
            .map(|h| Hist {
                counts: vec![0u64; h.buckets.slots()],
                sum: 0.0,
                count: 0,
                max: 0.0,
            })
            .collect();
        Registry {
            schema,
            counters,
            gauges,
            hists,
        }
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize] += by;
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    #[inline]
    pub fn observe(&mut self, id: HistId, v: f64) {
        let i = id.0 as usize;
        let slot = self.schema.hists[i].buckets.index(v);
        let h = &mut self.hists[i];
        h.counts[slot] += 1;
        if v.is_finite() {
            h.sum += v;
            if v > h.max {
                h.max = v;
            }
        }
        h.count += 1;
    }

    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    pub fn gauge(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    pub fn hist_count(&self, id: HistId) -> u64 {
        self.hists[id.0 as usize].count
    }

    pub fn hist_sum(&self, id: HistId) -> f64 {
        self.hists[id.0 as usize].sum
    }

    pub fn hist_max(&self, id: HistId) -> f64 {
        self.hists[id.0 as usize].max
    }

    pub fn hist_mean(&self, id: HistId) -> Option<f64> {
        let h = &self.hists[id.0 as usize];
        (h.count > 0).then(|| h.sum / h.count as f64)
    }

    /// Approximate quantile from bucket boundaries (upper bound of the
    /// bucket containing the q-th sample). Good enough for reports.
    pub fn hist_quantile(&self, id: HistId, q: f64) -> Option<f64> {
        let i = id.0 as usize;
        let h = &self.hists[i];
        if h.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (slot, &c) in h.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(self.schema.hists[i].buckets.upper_bound(slot));
            }
        }
        Some(f64::INFINITY)
    }

    /// Prometheus text exposition format (counters as `_total`-style
    /// monotonic series, histograms with cumulative `le` buckets).
    /// `HELP` text and label values are escaped per the exposition-format
    /// rules, so the output survives `promtool check metrics` even if a
    /// schema ever carries a backslash, newline, or quote.
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.schema.counters.iter().enumerate() {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} counter\n{} {}\n",
                d.name,
                escape_help(d.help),
                d.name,
                d.name,
                self.counters[i]
            ));
        }
        for (i, d) in self.schema.gauges.iter().enumerate() {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} gauge\n{} {}\n",
                d.name,
                escape_help(d.help),
                d.name,
                d.name,
                fmt_f64(self.gauges[i])
            ));
        }
        for (i, d) in self.schema.hists.iter().enumerate() {
            let h = &self.hists[i];
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} histogram\n",
                d.name,
                escape_help(d.help),
                d.name
            ));
            let mut cum = 0u64;
            for (slot, &c) in h.counts.iter().enumerate() {
                cum += c;
                let le = d.buckets.upper_bound(slot);
                let le = if le.is_infinite() {
                    "+Inf".to_string()
                } else {
                    fmt_f64(le)
                };
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    d.name,
                    escape_label(&le),
                    cum
                ));
            }
            out.push_str(&format!("{}_sum {}\n", d.name, fmt_f64(h.sum)));
            out.push_str(&format!("{}_count {}\n", d.name, h.count));
        }
        out
    }

    /// Structured JSON snapshot of every metric.
    pub fn snapshot_json(&self) -> Json {
        let mut counters = Vec::new();
        for (i, d) in self.schema.counters.iter().enumerate() {
            counters.push((d.name.to_string(), Json::Int(self.counters[i] as i64)));
        }
        let mut gauges = Vec::new();
        for (i, d) in self.schema.gauges.iter().enumerate() {
            gauges.push((d.name.to_string(), Json::Num(self.gauges[i])));
        }
        let mut hists = Vec::new();
        for (i, d) in self.schema.hists.iter().enumerate() {
            let h = &self.hists[i];
            let mut buckets = Vec::new();
            for (slot, &c) in h.counts.iter().enumerate() {
                let le = d.buckets.upper_bound(slot);
                buckets.push(Json::Arr(vec![
                    if le.is_infinite() {
                        Json::Str("+Inf".into())
                    } else {
                        Json::Num(le)
                    },
                    Json::Int(c as i64),
                ]));
            }
            hists.push((
                d.name.to_string(),
                Json::Obj(vec![
                    ("count".into(), Json::Int(h.count as i64)),
                    ("sum".into(), Json::Num(h.sum)),
                    ("max".into(), Json::Num(h.max)),
                    ("buckets".into(), Json::Arr(buckets)),
                ]),
            ));
        }
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(hists)),
        ])
    }

    /// ASCII bar rendering of one histogram, for terminal/Markdown reports.
    /// Empty leading/trailing buckets are elided.
    pub fn render_hist(&self, id: HistId, unit: &str) -> String {
        let i = id.0 as usize;
        let d = &self.schema.hists[i];
        let h = &self.hists[i];
        let mut out = format!("{} ({} samples", d.name, h.count);
        if let Some(mean) = self.hist_mean(id) {
            out.push_str(&format!(
                ", mean {} {unit}, max {} {unit}",
                fmt_short(mean),
                fmt_short(h.max)
            ));
        }
        out.push_str(")\n");
        if h.count == 0 {
            return out;
        }
        let first = h.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let last = h.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let peak = h.counts.iter().copied().max().unwrap_or(1).max(1);
        for slot in first..=last {
            let lo = if slot == 0 {
                0.0
            } else {
                d.buckets.upper_bound(slot - 1)
            };
            let hi = d.buckets.upper_bound(slot);
            let label = if hi.is_infinite() {
                format!("[{}, inf)", fmt_short(lo))
            } else {
                format!("[{}, {})", fmt_short(lo), fmt_short(hi))
            };
            let c = h.counts[slot];
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).round() as usize);
            out.push_str(&format!("  {label:>22} {c:>8} {bar}\n"));
        }
        out
    }
}

/// Escape a `HELP` comment per the Prometheus exposition format:
/// backslash and newline only.
fn escape_help(s: &str) -> String {
    if !s.contains(['\\', '\n']) {
        return s.to_string();
    }
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label *value*: backslash, newline, and double quote.
fn escape_label(s: &str) -> String {
    if !s.contains(['\\', '\n', '"']) {
        return s.to_string();
    }
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('"', "\\\"")
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Like [`fmt_f64`] but capped at two decimals — report labels don't
/// need full float precision (the Prometheus/JSON snapshots keep it).
fn fmt_short(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> (Registry, CounterId, GaugeId, HistId, HistId) {
        let mut s = Schema::default();
        let c = s.counter("sps_test_total", "a counter");
        let g = s.gauge("sps_test_depth", "a gauge");
        let hl = s.histogram("sps_test_log", "log2 hist", Buckets::Log2 { n: 8 });
        let hf = s.histogram(
            "sps_test_fixed",
            "fixed hist",
            Buckets::Fixed(&[1.0, 2.0, 4.0]),
        );
        (Registry::new(s), c, g, hl, hf)
    }

    #[test]
    fn counters_and_gauges() {
        let (mut r, c, g, _, _) = reg();
        r.inc(c, 3);
        r.inc(c, 2);
        r.set(g, 7.5);
        assert_eq!(r.counter(c), 5);
        assert_eq!(r.gauge(g), 7.5);
    }

    #[test]
    fn log2_bucket_index() {
        let b = Buckets::Log2 { n: 8 };
        assert_eq!(b.index(0.0), 0);
        assert_eq!(b.index(-3.0), 0);
        assert_eq!(b.index(f64::NAN), 0);
        assert_eq!(b.index(0.5), 0);
        assert_eq!(b.index(1.0), 1); // [1,2)
        assert_eq!(b.index(3.0), 2); // [2,4)
        assert_eq!(b.index(4.0), 3); // [4,8)
        assert_eq!(b.index(1e18), 7); // overflow clamps to last
        assert!(b.upper_bound(7).is_infinite());
        assert_eq!(b.upper_bound(1), 2.0);
    }

    #[test]
    fn fixed_bucket_index() {
        let b = Buckets::Fixed(&[1.0, 2.0, 4.0]);
        assert_eq!(b.index(0.5), 0);
        assert_eq!(b.index(1.0), 0); // le semantics: v <= bound
        assert_eq!(b.index(1.5), 1);
        assert_eq!(b.index(4.0), 2);
        assert_eq!(b.index(9.0), 3); // +Inf overflow
        assert!(b.upper_bound(3).is_infinite());
    }

    #[test]
    fn hist_stats_and_quantile() {
        let (mut r, _, _, hl, _) = reg();
        for v in [1.0, 2.0, 3.0, 100.0] {
            r.observe(hl, v);
        }
        assert_eq!(r.hist_count(hl), 4);
        assert_eq!(r.hist_sum(hl), 106.0);
        assert_eq!(r.hist_max(hl), 100.0);
        // p50 of 4 samples = 2nd sample, which lives in [2,4) -> ub 4
        assert_eq!(r.hist_quantile(hl, 0.5), Some(4.0));
        // p100 lives in the overflow bucket
        assert!(r.hist_quantile(hl, 1.0).unwrap().is_infinite());
    }

    #[test]
    fn prom_render_is_cumulative() {
        let (mut r, c, _, _, hf) = reg();
        r.inc(c, 1);
        r.observe(hf, 0.5);
        r.observe(hf, 3.0);
        let prom = r.render_prom();
        assert!(prom.contains("# TYPE sps_test_total counter"));
        assert!(prom.contains("sps_test_total 1"));
        assert!(prom.contains("sps_test_fixed_bucket{le=\"1\"} 1"));
        assert!(prom.contains("sps_test_fixed_bucket{le=\"4\"} 2"));
        assert!(prom.contains("sps_test_fixed_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("sps_test_fixed_count 2"));
    }

    #[test]
    fn prom_render_escapes_help_and_labels() {
        let mut s = Schema::default();
        let c = s.counter("sps_test_esc_total", "line one\nwith a \\ backslash");
        let mut r = Registry::new(s);
        r.inc(c, 1);
        let prom = r.render_prom();
        // The HELP line must stay single-line with escaped sequences.
        assert!(prom.contains("# HELP sps_test_esc_total line one\\nwith a \\\\ backslash\n"));
        assert!(!prom.contains("line one\nwith"));
        // Label-value escaping covers quote/backslash/newline.
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_help("plain"), "plain");
    }

    #[test]
    fn json_snapshot_parses() {
        let (mut r, c, g, hl, _) = reg();
        r.inc(c, 2);
        r.set(g, 1.0);
        r.observe(hl, 5.0);
        let text = r.snapshot_json().render();
        let parsed = Json::parse(&text).expect("snapshot must be valid JSON");
        match parsed {
            Json::Obj(fields) => {
                let keys: Vec<_> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert!(keys.contains(&"counters"));
                assert!(keys.contains(&"gauges"));
                assert!(keys.contains(&"histograms"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn hist_render_elides_empty_tails() {
        let (mut r, _, _, hl, _) = reg();
        r.observe(hl, 2.0);
        r.observe(hl, 2.5);
        let text = r.render_hist(hl, "ns");
        assert!(text.contains("[2, 4)"));
        assert!(!text.contains("[0, 1)"));
        assert!(!text.contains("inf"));
    }
}
