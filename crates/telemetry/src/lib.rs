//! Zero-cost-when-disabled telemetry for the scheduling simulator.
//!
//! The simulator emits flat [`Obs`] observations at interesting points
//! (events drained, decide spans, job transitions, per-instant samples).
//! A [`TelemetrySink`] consumes them. The default [`NullTelemetry`] reports
//! `enabled() == false` as a constant, so every instrumentation site —
//! guarded by that flag — folds away entirely and the hot path is
//! untouched. The concrete [`Telemetry`] sink feeds a static-handle metric
//! [`Registry`] (array-indexed adds, no hashing) and three online health
//! detectors (starvation watch, thrash detector, capacity-leak integral).
//!
//! Mirrors the `TraceSink`/`TraceCtx` design in `sps-trace`: the simulator
//! owns the sink as a type parameter, and lends it into policy code via
//! [`TelemetryCtx`] for the duration of a decide call.

mod health;
mod registry;
mod spans;
mod timeline;

pub use health::{HealthConfig, HealthEvent, HealthKind, HealthReport, HealthSummary};
pub use registry::{Buckets, CounterId, GaugeId, HistId, Registry, Schema};
pub use spans::{PhaseProfile, SpanEvent, SpanPhase, SpanProfiler, DEFAULT_SPAN_CAP, SPAN_PHASES};
pub use timeline::TimelineBuilder;

use health::{CapacityLeak, StarvationWatch, ThrashDetector};
use sps_trace::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;

/// Engine event classes tallied per drained batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum EventClass {
    Arrival = 0,
    Completion = 1,
    Drain = 2,
    Fault = 3,
    Tick = 4,
}

const EVENT_CLASSES: usize = 5;

/// One observation from the simulator. All variants are `Copy`; emission
/// sites are guarded by `enabled()` so disabled runs never construct one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Obs {
    /// An engine event was drained from the queue.
    Event {
        class: EventClass,
    },
    /// A policy decide call finished: wall-clock span and actions produced.
    Decide {
        wall_nanos: u64,
        actions: u32,
    },
    /// A victim table was built; `scanned` running jobs were considered.
    VictimScan {
        scanned: u32,
    },
    /// Job transitions (simulation time).
    JobStarted {
        job: u32,
        t: i64,
    },
    JobSuspended {
        job: u32,
        t: i64,
    },
    JobResumed {
        job: u32,
        t: i64,
    },
    JobCompleted {
        job: u32,
        t: i64,
        slowdown: f64,
    },
    JobKilled {
        job: u32,
        t: i64,
    },
    /// Admission control rejected the job at arrival.
    JobRejected {
        job: u32,
        t: i64,
    },
    /// Fault churn.
    ProcFailed {
        t: i64,
    },
    ProcRepaired {
        t: i64,
    },
    /// A queued job at or above the sink's starvation threshold.
    Starving {
        job: u32,
        t: i64,
        xfactor: f64,
    },
    /// Per-instant sample taken after actions were applied.
    Instant {
        t: i64,
        queued: u32,
        running: u32,
        suspended: u32,
        free_procs: u32,
        draining_procs: u32,
        /// Processors in the free set still claimed by suspended jobs.
        claimed_idle: u32,
        /// Pending entries in the event queue (calendar occupancy).
        queue_events: u32,
        /// Worst queued xfactor per coarse job category.
        cat_xfactor: [f64; 4],
    },
}

/// Consumer of simulator observations.
///
/// `enabled()` is the zero-cost switch: every instrumentation site checks
/// it (or a value cached from it) before building an [`Obs`].
pub trait TelemetrySink {
    /// Whether observations should be emitted at all.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Fold one observation.
    fn record(&mut self, obs: &Obs);

    /// Drain the next pending health event, if any. The run loop forwards
    /// these into the trace stream.
    #[inline]
    fn poll_health(&mut self) -> Option<HealthEvent> {
        None
    }

    /// End of run: close open integrals (may enqueue final health events).
    #[inline]
    fn finish(&mut self, _t_end: i64) {}

    /// Detector roll-up for the run result, if this sink tracks health.
    #[inline]
    fn health_summary(&self) -> Option<HealthSummary> {
        None
    }

    /// Queued-job xfactor at which the run loop should emit
    /// [`Obs::Starving`]. `INFINITY` disables the pre-filter.
    #[inline]
    fn starvation_threshold(&self) -> f64 {
        f64::INFINITY
    }
}

/// The default sink: reports disabled, ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTelemetry;

impl TelemetrySink for NullTelemetry {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _obs: &Obs) {}
}

impl<T: TelemetrySink + ?Sized> TelemetrySink for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, obs: &Obs) {
        (**self).record(obs)
    }

    #[inline]
    fn poll_health(&mut self) -> Option<HealthEvent> {
        (**self).poll_health()
    }

    #[inline]
    fn finish(&mut self, t_end: i64) {
        (**self).finish(t_end)
    }

    #[inline]
    fn health_summary(&self) -> Option<HealthSummary> {
        (**self).health_summary()
    }

    #[inline]
    fn starvation_threshold(&self) -> f64 {
        (**self).starvation_threshold()
    }
}

/// Borrowed view of a telemetry sink, lent into policy code for one decide
/// call. Same shape as `sps_trace::TraceCtx`: the `enabled` flag is cached
/// so the common disabled path is a bool test.
pub struct TelemetryCtx<'s> {
    inner: Option<RefCell<&'s mut dyn TelemetrySink>>,
    enabled: bool,
}

impl<'s> TelemetryCtx<'s> {
    /// A context that drops everything (for tests and reference decides).
    pub fn disabled() -> Self {
        TelemetryCtx {
            inner: None,
            enabled: false,
        }
    }

    /// Wrap a live sink; caches its `enabled()` flag.
    pub fn new(sink: &'s mut dyn TelemetrySink) -> Self {
        let enabled = sink.enabled();
        TelemetryCtx {
            inner: Some(RefCell::new(sink)),
            enabled,
        }
    }

    /// Cheap check for instrumentation sites.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an observation if enabled.
    #[inline]
    pub fn emit(&self, obs: &Obs) {
        if !self.enabled {
            return;
        }
        if let Some(cell) = &self.inner {
            cell.borrow_mut().record(obs);
        }
    }
}

impl fmt::Debug for TelemetryCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryCtx")
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// Typed handles for every simulator metric, registered once at startup.
pub struct SimMetrics {
    pub events: [CounterId; EVENT_CLASSES],
    pub decides: CounterId,
    pub actions: CounterId,
    pub starts: CounterId,
    pub suspends: CounterId,
    pub resumes: CounterId,
    pub completions: CounterId,
    pub kills: CounterId,
    pub rejections: CounterId,
    pub proc_failures: CounterId,
    pub proc_repairs: CounterId,
    pub health_events: CounterId,
    pub queued: GaugeId,
    pub running: GaugeId,
    pub suspended: GaugeId,
    pub free_procs: GaugeId,
    pub draining_procs: GaugeId,
    pub claimed_idle: GaugeId,
    pub queue_events: GaugeId,
    pub cat_xfactor: [GaugeId; 4],
    pub decide_latency_ns: HistId,
    pub victim_scan_width: HistId,
    pub queue_depth: HistId,
    pub actions_per_decide: HistId,
    pub slowdown: HistId,
}

impl SimMetrics {
    fn register(s: &mut Schema) -> SimMetrics {
        SimMetrics {
            events: [
                s.counter("sps_events_arrival_total", "arrival events drained"),
                s.counter("sps_events_completion_total", "completion events drained"),
                s.counter("sps_events_drain_total", "drain-done events drained"),
                s.counter("sps_events_fault_total", "fault events drained"),
                s.counter("sps_events_tick_total", "tick events drained"),
            ],
            decides: s.counter("sps_decides_total", "policy decide calls"),
            actions: s.counter("sps_actions_total", "actions produced by decide calls"),
            starts: s.counter("sps_job_starts_total", "jobs dispatched onto processors"),
            suspends: s.counter("sps_job_suspends_total", "job suspensions"),
            resumes: s.counter("sps_job_resumes_total", "job resumptions"),
            completions: s.counter("sps_job_completions_total", "jobs completed"),
            kills: s.counter("sps_job_kills_total", "jobs killed (faults/crashes)"),
            rejections: s.counter(
                "sps_job_rejections_total",
                "jobs refused by admission control",
            ),
            proc_failures: s.counter("sps_proc_failures_total", "processor failures"),
            proc_repairs: s.counter("sps_proc_repairs_total", "processor repairs"),
            health_events: s.counter("sps_health_events_total", "health detector firings"),
            queued: s.gauge("sps_queued_jobs", "jobs waiting in the queue"),
            running: s.gauge("sps_running_jobs", "jobs currently running"),
            suspended: s.gauge("sps_suspended_jobs", "jobs currently suspended"),
            free_procs: s.gauge("sps_free_procs", "idle processors"),
            draining_procs: s.gauge("sps_draining_procs", "processors held by draining jobs"),
            claimed_idle: s.gauge(
                "sps_claimed_idle_procs",
                "free processors claimed by suspended jobs",
            ),
            queue_events: s.gauge("sps_queue_events", "pending entries in the event queue"),
            cat_xfactor: [
                s.gauge(
                    "sps_queued_xfactor_c0",
                    "worst queued xfactor, coarse category 0",
                ),
                s.gauge(
                    "sps_queued_xfactor_c1",
                    "worst queued xfactor, coarse category 1",
                ),
                s.gauge(
                    "sps_queued_xfactor_c2",
                    "worst queued xfactor, coarse category 2",
                ),
                s.gauge(
                    "sps_queued_xfactor_c3",
                    "worst queued xfactor, coarse category 3",
                ),
            ],
            decide_latency_ns: s.histogram(
                "sps_decide_latency_ns",
                "wall-clock nanoseconds per decide call",
                Buckets::Log2 { n: 40 },
            ),
            victim_scan_width: s.histogram(
                "sps_victim_scan_width",
                "running jobs considered per victim scan",
                Buckets::Fixed(&[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]),
            ),
            queue_depth: s.histogram(
                "sps_queue_depth",
                "queued jobs sampled per decision instant",
                Buckets::Log2 { n: 16 },
            ),
            actions_per_decide: s.histogram(
                "sps_actions_per_decide",
                "actions emitted per decide call",
                Buckets::Log2 { n: 10 },
            ),
            slowdown: s.histogram(
                "sps_job_slowdown",
                "bounded slowdown of completed jobs",
                Buckets::Fixed(&[1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0]),
            ),
        }
    }
}

/// The concrete sink: metric registry + online health detectors.
pub struct Telemetry {
    reg: Registry,
    m: SimMetrics,
    cfg: HealthConfig,
    starvation: StarvationWatch,
    thrash: ThrashDetector,
    leak: CapacityLeak,
    pending: VecDeque<HealthEvent>,
    events: Vec<HealthEvent>,
    truncated: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry::with_config(HealthConfig::default())
    }

    pub fn with_config(cfg: HealthConfig) -> Self {
        let mut schema = Schema::default();
        let m = SimMetrics::register(&mut schema);
        Telemetry {
            reg: Registry::new(schema),
            m,
            starvation: StarvationWatch::default(),
            thrash: ThrashDetector::new(cfg.thrash_cycles, cfg.thrash_window),
            leak: CapacityLeak::new(cfg.leak_procsecs),
            cfg,
            pending: VecDeque::new(),
            events: Vec::new(),
            truncated: false,
        }
    }

    /// The underlying registry, for report rendering and assertions.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Typed metric handles (to pair with [`Telemetry::registry`]).
    pub fn metrics(&self) -> &SimMetrics {
        &self.m
    }

    /// Prometheus text exposition of the whole registry.
    pub fn render_prom(&self) -> String {
        self.reg.render_prom()
    }

    /// JSON snapshot of the whole registry.
    pub fn snapshot_json(&self) -> Json {
        self.reg.snapshot_json()
    }

    /// Full detector findings (call after the run finishes).
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            summary: self.summary(),
            worst_starvation_xf: self.starvation.worst_xf,
            worst_thrash_count: self.thrash.worst_count,
            events: self.events.clone(),
            truncated: self.truncated,
        }
    }

    fn summary(&self) -> HealthSummary {
        HealthSummary {
            starvation_onsets: self.starvation.onsets,
            unresolved_starvation: self.starvation.unresolved(),
            thrash_events: self.thrash.events,
            thrashed_jobs: self.thrash.thrashed_jobs(),
            capacity_leak_procsecs: self.leak.total,
        }
    }

    fn push_health(&mut self, ev: HealthEvent) {
        self.reg.inc(self.m.health_events, 1);
        if self.events.len() < self.cfg.max_events {
            self.events.push(ev);
        } else {
            self.truncated = true;
        }
        self.pending.push_back(ev);
    }
}

impl TelemetrySink for Telemetry {
    fn record(&mut self, obs: &Obs) {
        match *obs {
            Obs::Event { class } => self.reg.inc(self.m.events[class as usize], 1),
            Obs::Decide {
                wall_nanos,
                actions,
            } => {
                self.reg.inc(self.m.decides, 1);
                self.reg.inc(self.m.actions, actions as u64);
                self.reg
                    .observe(self.m.decide_latency_ns, wall_nanos as f64);
                self.reg.observe(self.m.actions_per_decide, actions as f64);
            }
            Obs::VictimScan { scanned } => {
                self.reg.observe(self.m.victim_scan_width, scanned as f64)
            }
            Obs::JobStarted { job, .. } => {
                self.reg.inc(self.m.starts, 1);
                self.starvation.resolve(job);
            }
            Obs::JobSuspended { job, t } => {
                self.reg.inc(self.m.suspends, 1);
                // Suspensions inside the warmup window never reach the
                // thrash detector, so transient churn cannot seed (or
                // count toward) a steady-state episode.
                if t >= self.cfg.warmup {
                    if let Some(ev) = self.thrash.on_suspend(job, t) {
                        self.push_health(ev);
                    }
                }
            }
            Obs::JobResumed { .. } => self.reg.inc(self.m.resumes, 1),
            Obs::JobCompleted { job, slowdown, .. } => {
                self.reg.inc(self.m.completions, 1);
                self.reg.observe(self.m.slowdown, slowdown);
                self.starvation.resolve(job);
            }
            Obs::JobKilled { job, .. } => {
                self.reg.inc(self.m.kills, 1);
                self.starvation.resolve(job);
            }
            Obs::JobRejected { .. } => self.reg.inc(self.m.rejections, 1),
            Obs::ProcFailed { .. } => self.reg.inc(self.m.proc_failures, 1),
            Obs::ProcRepaired { .. } => self.reg.inc(self.m.proc_repairs, 1),
            Obs::Starving { job, t, xfactor } => {
                if t >= self.cfg.warmup {
                    if let Some(ev) = self.starvation.observe(job, t, xfactor) {
                        self.push_health(ev);
                    }
                }
            }
            Obs::Instant {
                t,
                queued,
                running,
                suspended,
                free_procs,
                draining_procs,
                claimed_idle,
                queue_events,
                cat_xfactor,
            } => {
                self.reg.set(self.m.queued, queued as f64);
                self.reg.set(self.m.running, running as f64);
                self.reg.set(self.m.suspended, suspended as f64);
                self.reg.set(self.m.free_procs, free_procs as f64);
                self.reg.set(self.m.draining_procs, draining_procs as f64);
                self.reg.set(self.m.claimed_idle, claimed_idle as f64);
                self.reg.set(self.m.queue_events, queue_events as f64);
                for (i, xf) in cat_xfactor.iter().enumerate() {
                    self.reg.set(self.m.cat_xfactor[i], *xf);
                }
                self.reg.observe(self.m.queue_depth, queued as f64);
                if t >= self.cfg.warmup {
                    if let Some(ev) = self.leak.observe(t, claimed_idle) {
                        self.push_health(ev);
                    }
                }
            }
        }
    }

    fn poll_health(&mut self) -> Option<HealthEvent> {
        self.pending.pop_front()
    }

    fn finish(&mut self, t_end: i64) {
        if let Some(ev) = self.leak.finish(t_end) {
            self.push_health(ev);
        }
    }

    fn health_summary(&self) -> Option<HealthSummary> {
        Some(self.summary())
    }

    fn starvation_threshold(&self) -> f64 {
        self.cfg.starvation_xfactor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_disabled() {
        assert!(!NullTelemetry.enabled());
        assert!(NullTelemetry.health_summary().is_none());
        assert!(NullTelemetry.starvation_threshold().is_infinite());
    }

    #[test]
    fn ctx_disabled_drops_everything() {
        let ctx = TelemetryCtx::disabled();
        assert!(!ctx.enabled());
        ctx.emit(&Obs::VictimScan { scanned: 3 }); // must not panic
    }

    #[test]
    fn ctx_forwards_to_sink() {
        let mut t = Telemetry::new();
        {
            let ctx = TelemetryCtx::new(&mut t);
            assert!(ctx.enabled());
            ctx.emit(&Obs::VictimScan { scanned: 5 });
            ctx.emit(&Obs::Decide {
                wall_nanos: 800,
                actions: 2,
            });
        }
        assert_eq!(t.registry().hist_count(t.metrics().victim_scan_width), 1);
        assert_eq!(t.registry().counter(t.metrics().decides), 1);
        assert_eq!(t.registry().counter(t.metrics().actions), 2);
    }

    #[test]
    fn transitions_update_counters_and_detectors() {
        let mut t = Telemetry::with_config(HealthConfig {
            thrash_cycles: 2,
            thrash_window: 100,
            ..HealthConfig::default()
        });
        t.record(&Obs::JobStarted { job: 1, t: 0 });
        t.record(&Obs::JobSuspended { job: 1, t: 10 });
        t.record(&Obs::JobResumed { job: 1, t: 20 });
        t.record(&Obs::JobSuspended { job: 1, t: 30 }); // 2nd suspend in window
        let ev = t.poll_health().expect("thrash event pending");
        assert_eq!(ev.kind, HealthKind::Thrash);
        assert_eq!(ev.job, Some(1));
        assert!(t.poll_health().is_none());
        assert_eq!(t.registry().counter(t.metrics().suspends), 2);
        let summary = t.health_summary().unwrap();
        assert_eq!(summary.thrash_events, 1);
        assert_eq!(summary.thrashed_jobs, 1);
    }

    #[test]
    fn starving_obs_opens_and_start_resolves() {
        let mut t = Telemetry::new();
        t.record(&Obs::Starving {
            job: 3,
            t: 50,
            xfactor: 12.0,
        });
        assert_eq!(t.health_summary().unwrap().starvation_onsets, 1);
        assert_eq!(t.health_summary().unwrap().unresolved_starvation, 1);
        t.record(&Obs::JobStarted { job: 3, t: 60 });
        assert_eq!(t.health_summary().unwrap().unresolved_starvation, 0);
        let report = t.health_report();
        assert_eq!(report.worst_starvation_xf, 12.0);
        assert_eq!(report.events.len(), 1);
    }

    #[test]
    fn finish_closes_leak_integral() {
        let mut t = Telemetry::with_config(HealthConfig {
            leak_procsecs: 50,
            ..HealthConfig::default()
        });
        t.record(&Obs::Instant {
            t: 0,
            queued: 1,
            running: 1,
            suspended: 1,
            free_procs: 10,
            draining_procs: 0,
            claimed_idle: 10,
            queue_events: 2,
            cat_xfactor: [0.0; 4],
        });
        t.finish(10); // 10 procs * 10 s = 100 >= 50
        let ev = t.poll_health().expect("leak event");
        assert_eq!(ev.kind, HealthKind::CapacityLeak);
        assert_eq!(t.health_summary().unwrap().capacity_leak_procsecs, 100);
    }

    #[test]
    fn prom_and_json_surface_sim_metrics() {
        let mut t = Telemetry::new();
        t.record(&Obs::Decide {
            wall_nanos: 500,
            actions: 1,
        });
        let prom = t.render_prom();
        assert!(prom.contains("sps_decides_total 1"));
        assert!(prom.contains("# TYPE sps_decide_latency_ns histogram"));
        let json = t.snapshot_json().render();
        assert!(Json::parse(&json).is_ok());
    }

    #[test]
    fn event_log_caps_but_counters_continue() {
        let mut t = Telemetry::with_config(HealthConfig {
            max_events: 2,
            ..HealthConfig::default()
        });
        for job in 0..5 {
            t.record(&Obs::Starving {
                job,
                t: 1,
                xfactor: 20.0,
            });
        }
        let report = t.health_report();
        assert_eq!(report.events.len(), 2);
        assert!(report.truncated);
        assert_eq!(report.summary.starvation_onsets, 5);
    }
}
