//! Chrome trace-event / Perfetto JSON timeline builder.
//!
//! Renders spans into the [trace-event format] that `ui.perfetto.dev`
//! and `chrome://tracing` load directly: a `{"traceEvents": [...]}`
//! document of `ph: "X"` complete events (one per span, microsecond
//! timestamps) plus `ph: "M"` metadata events naming the lanes. Lanes
//! map onto the format's process/thread grid — the CLI uses one thread
//! id per sweep worker and one per run-loop scheme, so a mega sweep's
//! stragglers show up as long bars in their worker's lane.
//!
//! Built on the hand-rolled [`sps_trace::Json`] codec: no external
//! serialization crates.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use sps_trace::Json;

use crate::spans::SpanEvent;

/// Accumulates trace events and renders the final JSON document.
#[derive(Default)]
pub struct TimelineBuilder {
    events: Vec<Json>,
}

impl TimelineBuilder {
    pub fn new() -> Self {
        TimelineBuilder::default()
    }

    /// Name a lane: emits the `thread_name` metadata event Perfetto uses
    /// as the track label for `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(pid as i64)),
            ("tid", Json::Int(tid as i64)),
            ("args", obj(vec![("name", Json::Str(name.to_string()))])),
        ]));
    }

    /// Name the process row for `pid` (groups its lanes in the UI).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(pid as i64)),
            ("tid", Json::Int(0)),
            ("args", obj(vec![("name", Json::Str(name.to_string()))])),
        ]));
    }

    /// One complete (`ph: "X"`) span on lane `(pid, tid)`. Timestamps
    /// and durations are microseconds, per the format.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, ts_us: f64, dur_us: f64) {
        self.events.push(obj(vec![
            ("name", Json::Str(name.to_string())),
            ("ph", Json::Str("X".into())),
            ("pid", Json::Int(pid as i64)),
            ("tid", Json::Int(tid as i64)),
            ("ts", Json::Num(ts_us)),
            ("dur", Json::Num(dur_us)),
        ]));
    }

    /// Emit one run's phase spans onto lane `(pid, tid)`, offset by
    /// `base_ns` (the run's start relative to the timeline epoch; zero
    /// when the profiler already shared the global epoch).
    pub fn phase_spans(&mut self, pid: u32, tid: u32, base_ns: u64, spans: &[SpanEvent]) {
        for s in spans {
            self.complete(
                pid,
                tid,
                s.phase.name(),
                (base_ns + s.start_ns) as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            );
        }
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The final `{"traceEvents": [...]}` document.
    pub fn build(self) -> Json {
        obj(vec![
            ("traceEvents", Json::Arr(self.events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }

    /// Rendered JSON text (what `--timeline out.json` writes).
    pub fn render(self) -> String {
        let mut s = self.build().render();
        s.push('\n');
        s
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanPhase;

    #[test]
    fn document_shape_is_trace_event_format() {
        let mut tl = TimelineBuilder::new();
        tl.process_name(1, "sweep");
        tl.thread_name(1, 3, "worker 3");
        tl.complete(1, 3, "run 7", 10.0, 250.5);
        let doc = Json::parse(&tl.render()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let meta = &events[1];
        assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("worker 3")
        );
        let span = &events[2];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(10.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(250.5));
        assert_eq!(span.get("tid").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn phase_spans_convert_ns_to_us_with_base_offset() {
        let mut tl = TimelineBuilder::new();
        tl.phase_spans(
            1,
            2,
            1_000_000, // run started 1 ms after the epoch
            &[SpanEvent {
                phase: SpanPhase::Decide,
                start_ns: 500_000,
                dur_ns: 2_000,
            }],
        );
        let doc = tl.build();
        let ev = &doc.get("traceEvents").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(ev.get("name").and_then(Json::as_str), Some("decide"));
        assert_eq!(ev.get("ts").and_then(Json::as_f64), Some(1_500.0));
        assert_eq!(ev.get("dur").and_then(Json::as_f64), Some(2.0));
    }
}
