//! Implementations of every table/figure reproduction.
//!
//! Each public function renders one paper artifact as plain text. All of
//! them draw simulation results through a process-wide cache keyed by the
//! full experiment configuration, so `all` does not repeat work shared
//! between figures (e.g. Figs. 7 and 8 are the slowdown and turnaround
//! views of the same five runs).

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use sps_core::experiment::{ExperimentConfig, RunResult, SchedulerKind};
use sps_core::overhead::OverheadModel;
use sps_core::runner::BatchRunner;
use sps_core::theory;
use sps_metrics::aggregate::CategoryReport;
use sps_metrics::table::{render_comparison, render_grid, render_series};
use sps_workload::traces::{CTC, SDSC};
use sps_workload::{synthetic, CoarseCategory, EstimateModel, SystemPreset};

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

fn cache() -> &'static Mutex<HashMap<String, RunResult>> {
    static CACHE: OnceLock<Mutex<HashMap<String, RunResult>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key_of(cfg: &ExperimentConfig) -> String {
    format!(
        "{}|{}|{}|{:.4}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{}|{}",
        cfg.system.name,
        cfg.n_jobs,
        cfg.seed,
        cfg.load_factor,
        cfg.estimates,
        cfg.overhead,
        cfg.scheduler,
        cfg.tick_period,
        cfg.faults,
        cfg.preemption,
        cfg.checkpoint,
        cfg.speed,
        cfg.speed_aware
    )
}

/// Run a batch of configurations through the cache; missing entries are
/// simulated in parallel.
fn run_cached(configs: Vec<ExperimentConfig>) -> Vec<RunResult> {
    let keys: Vec<String> = configs.iter().map(key_of).collect();
    let missing: Vec<ExperimentConfig> = {
        let guard = cache().lock().expect("cache lock");
        configs
            .iter()
            .zip(&keys)
            .filter(|(_, k)| !guard.contains_key(*k))
            .map(|(c, _)| c.clone())
            .collect()
    };
    if !missing.is_empty() {
        let fresh = BatchRunner::new(missing).run();
        let mut guard = cache().lock().expect("cache lock");
        for r in fresh {
            guard.insert(key_of(&r.config), r);
        }
    }
    let guard = cache().lock().expect("cache lock");
    keys.iter().map(|k| guard[k].clone()).collect()
}

// ---------------------------------------------------------------------
// Shared scheme line-ups
// ---------------------------------------------------------------------

/// Section IV line-up (accurate estimates): SS at three factors vs NS vs IS.
fn ss_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Ss { sf: 1.5 },
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Ss { sf: 5.0 },
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
    ]
}

/// Section V line-up (inaccurate estimates): the tuned scheme at three
/// factors vs NS vs IS ("the TSS scheme is used for all the subsequent
/// experiments").
fn tss_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Tss { sf: 1.5 },
        SchedulerKind::Tss { sf: 2.0 },
        SchedulerKind::Tss { sf: 5.0 },
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
    ]
}

fn base_configs(system: SystemPreset, schemes: &[SchedulerKind]) -> Vec<ExperimentConfig> {
    schemes
        .iter()
        .map(|&s| ExperimentConfig::new(system, s))
        .collect()
}

fn inaccurate(cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.with_estimates(EstimateModel::paper_mixture())
}

/// Which per-category grid of a report to show.
#[derive(Clone, Copy)]
enum Metric {
    MeanSlowdown,
    WorstSlowdown,
    MeanTurnaround,
    WorstTurnaround,
}

impl Metric {
    fn grid(self, report: &CategoryReport) -> [f64; 16] {
        match self {
            Metric::MeanSlowdown => report.mean_slowdown_grid(),
            Metric::WorstSlowdown => report.worst_slowdown_grid(),
            Metric::MeanTurnaround => report.mean_turnaround_grid(),
            Metric::WorstTurnaround => report.worst_turnaround_grid(),
        }
    }
}

/// Which estimate-quality slice of the run to aggregate.
#[derive(Clone, Copy)]
enum Slice {
    All,
    Well,
    Badly,
}

impl Slice {
    fn report(self, run: &RunResult) -> &CategoryReport {
        match self {
            Slice::All => &run.report,
            Slice::Well => &run.report_well,
            Slice::Badly => &run.report_badly,
        }
    }
}

fn comparison_figure(
    title: &str,
    system: SystemPreset,
    schemes: Vec<SchedulerKind>,
    metric: Metric,
    slice: Slice,
    map: impl Fn(ExperimentConfig) -> ExperimentConfig,
) -> String {
    let configs: Vec<ExperimentConfig> = base_configs(system, &schemes)
        .into_iter()
        .map(&map)
        .collect();
    let results = run_cached(configs);
    let labels: Vec<String> = results.iter().map(|r| r.config.scheduler.label()).collect();
    let schemes_data: Vec<(&str, [f64; 16])> = results
        .iter()
        .zip(&labels)
        .map(|(r, l)| (l.as_str(), metric.grid(slice.report(r))))
        .collect();
    let mut out = render_comparison(title, &schemes_data);
    out.push('\n');
    for r in &results {
        let rep = slice.report(r);
        out.push_str(&format!(
            "{:<14} overall: mean slowdown {:.2}, mean turnaround {:.0} s, worst slowdown {:.1}, utilization {:.1}%, {} preemptions\n",
            r.config.scheduler.label(),
            rep.overall.mean_slowdown,
            rep.overall.mean_turnaround,
            rep.overall.worst_slowdown,
            r.utilization_pct(),
            r.sim.preemptions,
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table I: the 16-category criteria.
pub fn table1() -> String {
    let mut out = String::from("Table I: job categorization criteria\n");
    out.push_str(&format!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}\n",
        "", "1 Proc", "2-8 Procs", "9-32 Procs", "> 32 Procs"
    ));
    for (row, cells) in [
        ("0 - 10 min", ["VS Seq", "VS N", "VS W", "VS VW"]),
        ("10 min - 1 hr", ["S Seq", "S N", "S W", "S VW"]),
        ("1 hr - 8 hr", ["L Seq", "L N", "L W", "L VW"]),
        ("> 8 hr", ["VL Seq", "VL N", "VL W", "VL VW"]),
    ] {
        out.push_str(&format!(
            "{:<14}{:>12}{:>12}{:>12}{:>12}\n",
            row, cells[0], cells[1], cells[2], cells[3]
        ));
    }
    out
}

fn mix_table(system: SystemPreset, label: &str) -> String {
    let jobs = ExperimentConfig::new(system, SchedulerKind::Easy).trace();
    let mix = synthetic::empirical_mix(&jobs);
    let mut out = render_grid(
        &format!(
            "{label}: job distribution by category, % of jobs ({} synthetic trace, {} jobs)",
            system.name,
            jobs.len()
        ),
        &mix,
    );
    out.push_str(&render_grid(
        &format!("{label} (calibration target from the paper):"),
        &system.mix,
    ));
    out
}

/// Table II: CTC job mix.
pub fn table2() -> String {
    mix_table(CTC, "Table II")
}

/// Table III: SDSC job mix.
pub fn table3() -> String {
    mix_table(SDSC, "Table III")
}

fn ns_slowdown_table(system: SystemPreset, label: &str, paper: [f64; 16]) -> String {
    let results = run_cached(vec![ExperimentConfig::new(system, SchedulerKind::Easy)]);
    let r = &results[0];
    let mut out = render_grid(
        &format!(
            "{label}: average slowdown per category, nonpreemptive (NS) scheduling, {} trace",
            system.name
        ),
        &r.report.mean_slowdown_grid(),
    );
    out.push_str(&render_grid(&format!("{label} (paper's values):"), &paper));
    out.push_str(&format!(
        "\noverall slowdown: measured {:.2} (paper: {})\n",
        r.report.overall.mean_slowdown,
        if system.name == "CTC" {
            "3.58"
        } else {
            "14.13"
        }
    ));
    out
}

/// Table IV: NS average slowdowns per category, CTC.
pub fn table4() -> String {
    #[rustfmt::skip]
    let paper = [
        2.6, 4.76, 13.01, 34.07,
        1.26, 1.76, 3.04, 7.14,
        1.13, 1.43, 1.88, 1.63,
        1.03, 1.05, 1.09, 1.15,
    ];
    ns_slowdown_table(CTC, "Table IV", paper)
}

/// Table V: NS average slowdowns per category, SDSC.
pub fn table5() -> String {
    #[rustfmt::skip]
    let paper = [
        2.53, 14.41, 37.78, 113.31,
        1.15, 2.43, 4.83, 15.56,
        1.19, 1.24, 1.96, 2.79,
        1.03, 1.09, 1.18, 1.43,
    ];
    ns_slowdown_table(SDSC, "Table V", paper)
}

/// Table VI: the 4-category criteria for the load-variation study.
pub fn table6() -> String {
    let mut out = String::from("Table VI: categorization for load variation studies\n");
    out.push_str(&format!(
        "{:<14}{:>14}{:>14}\n",
        "", "<= 8 procs", "> 8 procs"
    ));
    out.push_str(&format!("{:<14}{:>14}{:>14}\n", "<= 1 hr", "SN", "SW"));
    out.push_str(&format!("{:<14}{:>14}{:>14}\n", "> 1 hr", "LN", "LW"));
    out
}

fn coarse_mix_table(system: SystemPreset, label: &str, paper: [f64; 4]) -> String {
    let jobs = ExperimentConfig::new(system, SchedulerKind::Easy).trace();
    let mix = synthetic::empirical_coarse_mix(&jobs);
    let mut out = format!(
        "{label}: 4-way job distribution, {} synthetic trace\n",
        system.name
    );
    out.push_str(&format!(
        "{:<14}{:>12}{:>12}\n",
        "", "measured %", "paper %"
    ));
    for (i, cat) in CoarseCategory::ALL.into_iter().enumerate() {
        out.push_str(&format!(
            "{:<14}{:>12.1}{:>12.1}\n",
            cat.label(),
            mix[i],
            paper[i]
        ));
    }
    out
}

/// Table VII: coarse mix, CTC.
pub fn table7() -> String {
    coarse_mix_table(CTC, "Table VII", [44.0, 30.0, 13.0, 13.0])
}

/// Table VIII: coarse mix, SDSC.
pub fn table8() -> String {
    coarse_mix_table(SDSC, "Table VIII", [47.0, 21.0, 22.0, 10.0])
}

// ---------------------------------------------------------------------
// Figs. 4-6: two-task alternation
// ---------------------------------------------------------------------

/// Figures 4-6: execution patterns of two equal simultaneous tasks under
/// various suspension factors.
pub fn fig4_6() -> String {
    let length = 3_600;
    let mut out = String::from(
        "Figs. 4-6: two equal full-machine tasks, execution alternation vs suspension factor\n\n",
    );
    for (name, sf) in [
        ("Fig. 4  (SF = 1)", 1.0),
        ("Fig. 5  (1 < SF < sqrt(2), SF = 1.2)", 1.2),
        ("boundary (SF = sqrt(2))", 2f64.sqrt()),
        ("Fig. 6  (SF = 2)", 2.0),
    ] {
        let trace = theory::two_task_alternation(length, sf, 60);
        out.push_str(&format!(
            "{name}: {} suspensions, first completion at {:.0} s, makespan {:.0} s\n",
            trace.suspensions, trace.first_completion, trace.last_completion
        ));
        // ASCII bar: 80 columns spanning the makespan.
        let cols = 80.0;
        let scale = cols / trace.last_completion;
        let mut bar = String::new();
        for seg in trace.segments.iter() {
            let w = (((seg.end - seg.start) * scale).round() as usize).max(1);
            let c = if seg.task == theory::Task::T1 {
                '1'
            } else {
                '2'
            };
            bar.extend(std::iter::repeat_n(c, w));
        }
        out.push_str(&format!("  |{bar}|\n"));
    }
    out.push_str(&format!(
        "\nminimum SF for at most n suspensions (= 2^(1/(n+1))): n=0: {:.3}, n=1: {:.3}, n=2: {:.3}, n=3: {:.3}\n",
        theory::min_sf_for_at_most(0),
        theory::min_sf_for_at_most(1),
        theory::min_sf_for_at_most(2),
        theory::min_sf_for_at_most(3),
    ));
    out
}

// ---------------------------------------------------------------------
// Figs. 7-10: SS average slowdown / turnaround (accurate estimates)
// ---------------------------------------------------------------------

/// Fig. 7: average slowdown, SS scheme, CTC.
pub fn fig7() -> String {
    comparison_figure(
        "Fig. 7: average slowdown, SS vs NS vs IS, CTC trace (accurate estimates)",
        CTC,
        ss_lineup(),
        Metric::MeanSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 8: average turnaround time, SS scheme, CTC.
pub fn fig8() -> String {
    comparison_figure(
        "Fig. 8: average turnaround time (s), SS vs NS vs IS, CTC trace (accurate estimates)",
        CTC,
        ss_lineup(),
        Metric::MeanTurnaround,
        Slice::All,
        |c| c,
    )
}

/// Fig. 9: average slowdown, SS scheme, SDSC.
pub fn fig9() -> String {
    comparison_figure(
        "Fig. 9: average slowdown, SS vs NS vs IS, SDSC trace (accurate estimates)",
        SDSC,
        ss_lineup(),
        Metric::MeanSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 10: average turnaround time, SS scheme, SDSC.
pub fn fig10() -> String {
    comparison_figure(
        "Fig. 10: average turnaround time (s), SS vs NS vs IS, SDSC trace (accurate estimates)",
        SDSC,
        ss_lineup(),
        Metric::MeanTurnaround,
        Slice::All,
        |c| c,
    )
}

// ---------------------------------------------------------------------
// Figs. 11-18: worst case & the TSS tuning
// ---------------------------------------------------------------------

fn worst_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
    ]
}

fn tuned_worst_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Tss { sf: 2.0 },
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
    ]
}

/// Fig. 11: worst-case slowdown, SS, CTC.
pub fn fig11() -> String {
    comparison_figure(
        "Fig. 11: worst-case slowdown, SS(SF=2) vs NS vs IS, CTC trace",
        CTC,
        worst_lineup(),
        Metric::WorstSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 12: worst-case turnaround, SS, CTC.
pub fn fig12() -> String {
    comparison_figure(
        "Fig. 12: worst-case turnaround time (s), SS(SF=2) vs NS vs IS, CTC trace",
        CTC,
        worst_lineup(),
        Metric::WorstTurnaround,
        Slice::All,
        |c| c,
    )
}

/// Fig. 13: worst-case slowdown with TSS, CTC.
pub fn fig13() -> String {
    comparison_figure(
        "Fig. 13: worst-case slowdown, TSS tuning, CTC trace",
        CTC,
        tuned_worst_lineup(),
        Metric::WorstSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 14: worst-case turnaround with TSS, CTC.
pub fn fig14() -> String {
    comparison_figure(
        "Fig. 14: worst-case turnaround time (s), TSS tuning, CTC trace",
        CTC,
        tuned_worst_lineup(),
        Metric::WorstTurnaround,
        Slice::All,
        |c| c,
    )
}

/// Fig. 15: worst-case slowdown, SS, SDSC.
pub fn fig15() -> String {
    comparison_figure(
        "Fig. 15: worst-case slowdown, SS(SF=2) vs NS vs IS, SDSC trace",
        SDSC,
        worst_lineup(),
        Metric::WorstSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 16: worst-case turnaround, SS, SDSC.
pub fn fig16() -> String {
    comparison_figure(
        "Fig. 16: worst-case turnaround time (s), SS(SF=2) vs NS vs IS, SDSC trace",
        SDSC,
        worst_lineup(),
        Metric::WorstTurnaround,
        Slice::All,
        |c| c,
    )
}

/// Fig. 17: worst-case slowdown with TSS, SDSC.
pub fn fig17() -> String {
    comparison_figure(
        "Fig. 17: worst-case slowdown, TSS tuning, SDSC trace",
        SDSC,
        tuned_worst_lineup(),
        Metric::WorstSlowdown,
        Slice::All,
        |c| c,
    )
}

/// Fig. 18: worst-case turnaround with TSS, SDSC.
pub fn fig18() -> String {
    comparison_figure(
        "Fig. 18: worst-case turnaround time (s), TSS tuning, SDSC trace",
        SDSC,
        tuned_worst_lineup(),
        Metric::WorstTurnaround,
        Slice::All,
        |c| c,
    )
}

// ---------------------------------------------------------------------
// Figs. 19-30: inaccurate user estimates
// ---------------------------------------------------------------------

macro_rules! estimate_fig {
    ($name:ident, $title:expr, $sys:expr, $metric:expr, $slice:expr) => {
        #[doc = $title]
        pub fn $name() -> String {
            comparison_figure($title, $sys, tss_lineup(), $metric, $slice, inaccurate)
        }
    };
}

estimate_fig!(
    fig19,
    "Fig. 19: average slowdown, inaccurate estimates, CTC trace",
    CTC,
    Metric::MeanSlowdown,
    Slice::All
);
estimate_fig!(
    fig20,
    "Fig. 20: average slowdown of well estimated jobs, CTC trace",
    CTC,
    Metric::MeanSlowdown,
    Slice::Well
);
estimate_fig!(
    fig21,
    "Fig. 21: average slowdown of badly estimated jobs, CTC trace",
    CTC,
    Metric::MeanSlowdown,
    Slice::Badly
);
estimate_fig!(
    fig22,
    "Fig. 22: average turnaround time (s), inaccurate estimates, CTC trace",
    CTC,
    Metric::MeanTurnaround,
    Slice::All
);
estimate_fig!(
    fig23,
    "Fig. 23: average turnaround time (s) of well estimated jobs, CTC trace",
    CTC,
    Metric::MeanTurnaround,
    Slice::Well
);
estimate_fig!(
    fig24,
    "Fig. 24: average turnaround time (s) of badly estimated jobs, CTC trace",
    CTC,
    Metric::MeanTurnaround,
    Slice::Badly
);
estimate_fig!(
    fig25,
    "Fig. 25: average slowdown, inaccurate estimates, SDSC trace",
    SDSC,
    Metric::MeanSlowdown,
    Slice::All
);
estimate_fig!(
    fig26,
    "Fig. 26: average slowdown of well estimated jobs, SDSC trace",
    SDSC,
    Metric::MeanSlowdown,
    Slice::Well
);
estimate_fig!(
    fig27,
    "Fig. 27: average slowdown of badly estimated jobs, SDSC trace",
    SDSC,
    Metric::MeanSlowdown,
    Slice::Badly
);
estimate_fig!(
    fig28,
    "Fig. 28: average turnaround time (s), inaccurate estimates, SDSC trace",
    SDSC,
    Metric::MeanTurnaround,
    Slice::All
);
estimate_fig!(
    fig29,
    "Fig. 29: average turnaround time (s) of well estimated jobs, SDSC trace",
    SDSC,
    Metric::MeanTurnaround,
    Slice::Well
);
estimate_fig!(
    fig30,
    "Fig. 30: average turnaround time (s) of badly estimated jobs, SDSC trace",
    SDSC,
    Metric::MeanTurnaround,
    Slice::Badly
);

// ---------------------------------------------------------------------
// Figs. 31-34: suspension overhead
// ---------------------------------------------------------------------

fn overhead_figure(title: &str, system: SystemPreset, metric: Metric) -> String {
    let mut configs = vec![
        inaccurate(ExperimentConfig::new(
            system,
            SchedulerKind::Tss { sf: 2.0 },
        )),
        inaccurate(ExperimentConfig::new(
            system,
            SchedulerKind::Tss { sf: 2.0 },
        ))
        .with_overhead(OverheadModel::paper()),
        inaccurate(ExperimentConfig::new(system, SchedulerKind::Easy)),
        inaccurate(ExperimentConfig::new(
            system,
            SchedulerKind::ImmediateService,
        )),
    ];
    // IS pays overhead too when it is modelled; the paper's "SF = 2 OH"
    // bar isolates the effect on the proposed scheme.
    let results = run_cached(std::mem::take(&mut configs));
    let labels = ["SF=2 Tuned", "SF=2 Tuned OH", "NS", "IS"];
    let schemes: Vec<(&str, [f64; 16])> = results
        .iter()
        .zip(labels)
        .map(|(r, l)| (l, metric.grid(&r.report)))
        .collect();
    let mut out = render_comparison(title, &schemes);
    out.push('\n');
    for (r, l) in results.iter().zip(labels) {
        out.push_str(&format!(
            "{:<14} overall: mean slowdown {:.2}, mean turnaround {:.0} s, utilization {:.1}%, {} preemptions\n",
            l,
            r.report.overall.mean_slowdown,
            r.report.overall.mean_turnaround,
            r.utilization_pct(),
            r.sim.preemptions
        ));
    }
    out
}

/// Fig. 31: slowdown with suspension overhead, CTC.
pub fn fig31() -> String {
    overhead_figure(
        "Fig. 31: average slowdown with suspension/restart overhead (2 MB/s per proc), CTC trace",
        CTC,
        Metric::MeanSlowdown,
    )
}

/// Fig. 32: turnaround with suspension overhead, CTC.
pub fn fig32() -> String {
    overhead_figure(
        "Fig. 32: average turnaround time (s) with suspension/restart overhead, CTC trace",
        CTC,
        Metric::MeanTurnaround,
    )
}

/// Fig. 33: slowdown with suspension overhead, SDSC.
pub fn fig33() -> String {
    overhead_figure(
        "Fig. 33: average slowdown with suspension/restart overhead (2 MB/s per proc), SDSC trace",
        SDSC,
        Metric::MeanSlowdown,
    )
}

/// Fig. 34: turnaround with suspension overhead, SDSC.
pub fn fig34() -> String {
    overhead_figure(
        "Fig. 34: average turnaround time (s) with suspension/restart overhead, SDSC trace",
        SDSC,
        Metric::MeanTurnaround,
    )
}

// ---------------------------------------------------------------------
// Figs. 35-44: load variation
// ---------------------------------------------------------------------

fn load_factors(system: SystemPreset) -> Vec<f64> {
    if system.name == "CTC" {
        vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    } else {
        // The paper sweeps SDSC over 1.0-1.5; our synthetic SDSC baseline
        // sits at a lower absolute load, so the sweep extends to 2.0 to
        // reach the saturation plateau.
        vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    }
}

fn sweep_lineup() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Tss { sf: 2.0 },
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
    ]
}

/// All (scheme × load) runs for one system's sweep, cached.
fn sweep(system: SystemPreset) -> Vec<Vec<RunResult>> {
    // Outer: scheme; inner: load factor.
    let schemes = sweep_lineup();
    let loads = load_factors(system);
    let mut configs = Vec::new();
    for &s in &schemes {
        for &lf in &loads {
            configs.push(ExperimentConfig::new(system, s).with_load_factor(lf));
        }
    }
    let flat = run_cached(configs);
    flat.chunks(loads.len()).map(|c| c.to_vec()).collect()
}

fn utilization_figure(title: &str, system: SystemPreset) -> String {
    let runs = sweep(system);
    let loads = load_factors(system);
    let series: Vec<(String, Vec<f64>)> = runs
        .iter()
        .map(|per_scheme| {
            (
                per_scheme[0].config.scheduler.label(),
                per_scheme.iter().map(RunResult::utilization_pct).collect(),
            )
        })
        .collect();
    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    render_series(title, "load factor", &loads, &named)
}

/// Fig. 35: utilization vs load, CTC.
pub fn fig35() -> String {
    utilization_figure(
        "Fig. 35: overall system utilization (%) under different loads, CTC trace",
        CTC,
    )
}

/// Fig. 38: utilization vs load, SDSC.
pub fn fig38() -> String {
    utilization_figure(
        "Fig. 38: overall system utilization (%) under different loads, SDSC trace",
        SDSC,
    )
}

fn coarse_metric(r: &RunResult, cat: CoarseCategory, slowdown: bool) -> f64 {
    let s = &r.report.per_coarse[cat.index()];
    if slowdown {
        s.mean_slowdown
    } else {
        s.mean_turnaround
    }
}

fn load_sweep_figure(title: &str, system: SystemPreset, slowdown: bool) -> String {
    let runs = sweep(system);
    let loads = load_factors(system);
    let mut out = format!("{title}\n");
    for cat in CoarseCategory::ALL {
        let series: Vec<(String, Vec<f64>)> = runs
            .iter()
            .map(|per_scheme| {
                (
                    per_scheme[0].config.scheduler.label(),
                    per_scheme
                        .iter()
                        .map(|r| coarse_metric(r, cat, slowdown))
                        .collect(),
                )
            })
            .collect();
        let named: Vec<(&str, Vec<f64>)> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        out.push('\n');
        out.push_str(&render_series(cat.label(), "load factor", &loads, &named));
    }
    out
}

/// Fig. 36: slowdown vs load per coarse category, CTC.
pub fn fig36() -> String {
    load_sweep_figure("Fig. 36: average slowdown vs load, CTC trace", CTC, true)
}

/// Fig. 37: turnaround vs load per coarse category, CTC.
pub fn fig37() -> String {
    load_sweep_figure(
        "Fig. 37: average turnaround time (s) vs load, CTC trace",
        CTC,
        false,
    )
}

/// Fig. 39: slowdown vs load per coarse category, SDSC.
pub fn fig39() -> String {
    load_sweep_figure("Fig. 39: average slowdown vs load, SDSC trace", SDSC, true)
}

/// Fig. 40: turnaround vs load per coarse category, SDSC.
pub fn fig40() -> String {
    load_sweep_figure(
        "Fig. 40: average turnaround time (s) vs load, SDSC trace",
        SDSC,
        false,
    )
}

fn util_scatter_figure(title: &str, system: SystemPreset, slowdown: bool) -> String {
    let runs = sweep(system);
    let mut out = format!("{title}\n(each row is one load factor; x = achieved utilization %)\n");
    for cat in CoarseCategory::ALL {
        out.push_str(&format!("\n{}\n", cat.label()));
        out.push_str(&format!("{:<12}", "load"));
        for per_scheme in &runs {
            let name = per_scheme[0].config.scheduler.label();
            out.push_str(&format!("{:>11}-util{:>11}-val", name, name));
        }
        out.push('\n');
        let loads = load_factors(system);
        for (i, lf) in loads.iter().enumerate() {
            out.push_str(&format!("{lf:<12.2}"));
            for per_scheme in &runs {
                let r = &per_scheme[i];
                out.push_str(&format!(
                    "{:>16.1}{:>15.1}",
                    r.utilization_pct(),
                    coarse_metric(r, cat, slowdown)
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// Fig. 41: slowdown vs utilization, CTC.
pub fn fig41() -> String {
    util_scatter_figure(
        "Fig. 41: average slowdown vs system utilization, CTC trace",
        CTC,
        true,
    )
}

/// Fig. 42: turnaround vs utilization, CTC.
pub fn fig42() -> String {
    util_scatter_figure(
        "Fig. 42: average turnaround time vs system utilization, CTC trace",
        CTC,
        false,
    )
}

/// Fig. 43: slowdown vs utilization, SDSC.
pub fn fig43() -> String {
    util_scatter_figure(
        "Fig. 43: average slowdown vs system utilization, SDSC trace",
        SDSC,
        true,
    )
}

/// Fig. 44: turnaround vs utilization, SDSC.
pub fn fig44() -> String {
    util_scatter_figure(
        "Fig. 44: average turnaround time vs system utilization, SDSC trace",
        SDSC,
        false,
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Fine sweep of the suspension factor (extends Figs. 7-10).
pub fn ablation_sf_sweep() -> String {
    let sfs = [1.1, 1.25, 1.5, 2.0, 3.0, 5.0];
    let mut out =
        String::from("Ablation: suspension-factor sweep, SS on CTC (accurate estimates)\n");
    out.push_str(&format!(
        "{:<8}{:>14}{:>14}{:>14}{:>14}{:>14}\n",
        "SF", "overall sd", "VS mean sd", "VL mean sd", "preemptions", "util %"
    ));
    let configs: Vec<ExperimentConfig> = sfs
        .iter()
        .map(|&sf| ExperimentConfig::new(CTC, SchedulerKind::Ss { sf }))
        .collect();
    let results = run_cached(configs);
    for (sf, r) in sfs.iter().zip(&results) {
        // Aggregate the four VS and four VL cells, weighted by count.
        let vs = aggregate_row(&r.report, 0);
        let vl = aggregate_row(&r.report, 3);
        out.push_str(&format!(
            "{:<8}{:>14.2}{:>14.2}{:>14.2}{:>14}{:>14.1}\n",
            sf,
            r.report.overall.mean_slowdown,
            vs,
            vl,
            r.sim.preemptions,
            r.utilization_pct()
        ));
    }
    out.push_str("\nLower SF helps short jobs (more eager preemption) and hurts very long\njobs; preemption count falls as SF grows.\n");
    out
}

/// Count-weighted mean slowdown of one run-time row (0 = VS … 3 = VL).
fn aggregate_row(report: &CategoryReport, row: usize) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for col in 0..4 {
        let s = &report.per_category[row * 4 + col];
        sum += s.mean_slowdown * s.count as f64;
        n += s.count;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// SS with and without the ½-width suspend rule.
pub fn ablation_width_restriction() -> String {
    use sps_core::sched::ss::{SelectiveSuspension, SsConfig};
    use sps_core::sim::Simulator;
    let mut out =
        String::from("Ablation: the width restriction (suspender >= half the victim's width)\n");
    for system in [CTC, SDSC] {
        let jobs = ExperimentConfig::new(system, SchedulerKind::Easy).trace();
        let with = Simulator::new(
            jobs.clone(),
            system.procs,
            Box::new(SelectiveSuspension::new(SsConfig::ss(2.0))),
        )
        .run();
        let mut cfg = SsConfig::ss(2.0);
        cfg.width_restriction = false;
        let without =
            Simulator::new(jobs, system.procs, Box::new(SelectiveSuspension::new(cfg))).run();
        let rep_with = CategoryReport::from_outcomes(&with.outcomes);
        let rep_without = CategoryReport::from_outcomes(&without.outcomes);
        out.push_str(&format!(
            "\n{} trace: mean slowdown per width class\n",
            system.name
        ));
        out.push_str(&format!(
            "{:<16}{:>12}{:>12}{:>14}\n",
            "width class", "with rule", "without", "paper keeps?"
        ));
        for (w, label) in ["Seq", "Narrow", "Wide", "Very Wide"].iter().enumerate() {
            // Count-weighted mean across run-time rows for this width col.
            let col = |rep: &CategoryReport| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for row in 0..4 {
                    let s = &rep.per_category[row * 4 + w];
                    sum += s.mean_slowdown * s.count as f64;
                    n += s.count;
                }
                sum / n.max(1) as f64
            };
            out.push_str(&format!(
                "{:<16}{:>12.2}{:>12.2}{:>14}\n",
                label,
                col(&rep_with),
                col(&rep_without),
                if w >= 2 { "protects wide" } else { "" }
            ));
        }
        out.push_str(&format!(
            "preemptions: with rule {}, without {}\n",
            with.preemptions, without.preemptions
        ));
    }
    out
}

/// TSS limit sources: none (SS), running averages, NS-derived static.
pub fn ablation_tss_limit_source() -> String {
    use sps_core::sched::ss::{SelectiveSuspension, SsConfig};
    use sps_core::sched::tss::TssLimits;
    use sps_core::sim::Simulator;
    let system = CTC;
    let jobs = ExperimentConfig::new(system, SchedulerKind::Easy).trace();
    // NS averages for the static variant.
    let ns = run_cached(vec![ExperimentConfig::new(system, SchedulerKind::Easy)]).remove(0);
    let ns_avgs = ns.report.mean_slowdown_grid();

    let variants: Vec<(&str, SsConfig)> = vec![
        ("SS (no limit)", SsConfig::ss(2.0)),
        ("TSS running avg", SsConfig::tss(2.0)),
        (
            "TSS static (NS)",
            SsConfig {
                sf: 2.0,
                width_restriction: true,
                migration: false,
                limits: Some(TssLimits::with_static_averages(ns_avgs, 1.5)),
            },
        ),
    ];
    let mut out =
        String::from("Ablation: where TSS's per-category average slowdown comes from (CTC)\n");
    out.push_str(&format!(
        "{:<18}{:>12}{:>14}{:>14}{:>14}{:>16}\n",
        "variant", "overall sd", "worst sd", "VL worst sd", "preemptions", "cells +/-"
    ));
    let mut baseline: Option<[f64; 16]> = None;
    for (name, cfg) in variants {
        let res = Simulator::new(
            jobs.clone(),
            system.procs,
            Box::new(SelectiveSuspension::new(cfg)),
        )
        .run();
        let rep = CategoryReport::from_outcomes(&res.outcomes);
        let vl_worst = (12..16)
            .map(|i| rep.per_category[i].worst_slowdown)
            .fold(0.0, f64::max);
        let grid = rep.worst_slowdown_grid();
        let cells = match &baseline {
            None => {
                baseline = Some(grid);
                "(baseline)".to_string()
            }
            Some(base) => {
                let better = grid
                    .iter()
                    .zip(base)
                    .filter(|(b, a)| **b < **a * 0.95)
                    .count();
                let worse = grid
                    .iter()
                    .zip(base)
                    .filter(|(b, a)| **b > **a * 1.05)
                    .count();
                format!("{better}+/{worse}-")
            }
        };
        out.push_str(&format!(
            "{:<18}{:>12.2}{:>14.1}{:>14.2}{:>14}{:>16}\n",
            name,
            rep.overall.mean_slowdown,
            rep.overall.worst_slowdown,
            vl_worst,
            res.preemptions,
            cells
        ));
    }
    out.push_str(concat!(
        "\n'cells +/-' counts categories whose *worst-case* slowdown the limit\n",
        "improves/worsens by >5% relative to plain SS. Both limit sources\n",
        "improve most categories' worst cases at a small cost in average\n",
        "slowdown; an occasional very-short very-wide straggler (a single\n",
        "job blocked by freshly protected runners) carries the global max.\n",
    ));
    out
}

/// Reservation depth: how much of NS's short-job pain is a reservation-
/// policy artifact versus something only preemption fixes.
pub fn ablation_reservation_depth() -> String {
    let mut out = String::from(
        "Ablation: backfilling reservation depth (EASY=1 ... conservative=all) vs TSS\n",
    );
    for system in [CTC, SDSC] {
        out.push_str(&format!(
            "\n{} trace\n{:<16}{:>12}{:>14}{:>14}{:>10}\n",
            system.name, "scheme", "overall sd", "VS mean sd", "VW mean sd", "util %"
        ));
        let mut configs: Vec<ExperimentConfig> = [1usize, 2, 4, 16]
            .iter()
            .map(|&d| ExperimentConfig::new(system, SchedulerKind::Flex { depth: d }))
            .collect();
        configs.push(ExperimentConfig::new(system, SchedulerKind::Conservative));
        configs.push(ExperimentConfig::new(
            system,
            SchedulerKind::Tss { sf: 2.0 },
        ));
        for r in run_cached(configs) {
            // Count-weighted very-wide column mean.
            let mut vw_sum = 0.0;
            let mut vw_n = 0usize;
            for row in 0..4 {
                let s = &r.report.per_category[row * 4 + 3];
                vw_sum += s.mean_slowdown * s.count as f64;
                vw_n += s.count;
            }
            out.push_str(&format!(
                "{:<16}{:>12.2}{:>14.2}{:>14.2}{:>10.1}\n",
                r.config.scheduler.label(),
                r.report.overall.mean_slowdown,
                aggregate_row(&r.report, 0),
                vw_sum / vw_n.max(1) as f64,
                r.utilization_pct()
            ));
        }
    }
    out.push_str(concat!(
        "\nNo reservation depth comes close to preemption for the very-short\n",
        "categories: the pain is inherent to run-to-completion scheduling,\n",
        "which is the paper's core argument.\n",
    ));
    out
}

/// Slowdown tail percentiles — finer-grained than the paper's mean/worst
/// pair, same story: preemption compresses the tail.
pub fn percentiles() -> String {
    use sps_metrics::aggregate::{percentile, slowdown_distribution};
    let mut out = String::from("Bounded-slowdown percentiles per scheme\n");
    for system in [CTC, SDSC] {
        out.push_str(&format!(
            "\n{} trace\n{:<14}{:>10}{:>10}{:>10}{:>10}{:>12}\n",
            system.name, "scheme", "p50", "p90", "p99", "p99.9", "max"
        ));
        let configs = vec![
            ExperimentConfig::new(system, SchedulerKind::Easy),
            ExperimentConfig::new(system, SchedulerKind::Tss { sf: 2.0 }),
            ExperimentConfig::new(system, SchedulerKind::ImmediateService),
        ];
        for r in run_cached(configs) {
            let d = slowdown_distribution(&r.sim.outcomes);
            out.push_str(&format!(
                "{:<14}{:>10.2}{:>10.2}{:>10.1}{:>10.1}{:>12.1}\n",
                r.config.scheduler.label(),
                percentile(&d, 50.0),
                percentile(&d, 90.0),
                percentile(&d, 99.0),
                percentile(&d, 99.9),
                percentile(&d, 100.0),
            ));
        }
    }
    out
}

/// Machine occupancy over time: utilization sparklines per scheme, from
/// the simulator's per-dispatch segment record. Shows *where* NS's high
/// packing and IS's ragged profile come from.
pub fn timeline() -> String {
    use sps_core::sim::Simulator;
    use sps_metrics::timeline::{busy_timeline, render_sparkline};
    let mut out =
        String::from("Machine occupancy over time (CTC trace, load factor 1.4, 120 buckets)\n\n");
    let jobs = ExperimentConfig::new(CTC, SchedulerKind::Easy)
        .with_load_factor(1.4)
        .trace();
    let kinds = [
        SchedulerKind::Easy,
        SchedulerKind::Tss { sf: 2.0 },
        SchedulerKind::ImmediateService,
        SchedulerKind::Gang,
    ];
    // Common horizon: the slowest scheme's makespan.
    let mut runs = Vec::new();
    let mut horizon = 0i64;
    for kind in kinds {
        let res = Simulator::new(jobs.clone(), CTC.procs, kind.build()).run();
        horizon = horizon.max(
            res.outcomes
                .iter()
                .map(|o| o.completion.secs())
                .max()
                .unwrap_or(0),
        );
        runs.push((kind.label(), res));
    }
    for (label, res) in &runs {
        let intervals: Vec<(i64, i64, u32)> = res
            .segments
            .iter()
            .map(|s| (s.start.secs(), s.end.secs(), s.procs.count()))
            .collect();
        let series = busy_timeline(&intervals, CTC.procs, 0, horizon, 120);
        out.push_str(&format!(
            "{:<14} util {:>5.1}%\n|{}|\n\n",
            label,
            res.utilization * 100.0,
            render_sparkline(&series)
        ));
    }
    out.push_str("Each row spans the same wall-clock horizon; taller is busier.\n");
    out
}

/// Gang scheduling vs the paper's schemes (Section II cites gang
/// scheduling as the classical preemptive alternative; this quantifies
/// why the paper pursued selective suspension instead).
pub fn ablation_gang() -> String {
    let mut out =
        String::from("Ablation: time-sliced gang scheduling (10-min quantum) vs NS / TSS (CTC)\n");
    let configs = vec![
        ExperimentConfig::new(CTC, SchedulerKind::Easy),
        ExperimentConfig::new(CTC, SchedulerKind::Tss { sf: 2.0 }),
        ExperimentConfig::new(CTC, SchedulerKind::Gang),
        ExperimentConfig::new(CTC, SchedulerKind::ImmediateService),
    ];
    let results = run_cached(configs);
    out.push_str(&format!(
        "{:<14}{:>12}{:>14}{:>12}{:>14}{:>14}\n",
        "scheme", "overall sd", "mean TAT (s)", "util %", "VS mean sd", "preemptions"
    ));
    for r in &results {
        out.push_str(&format!(
            "{:<14}{:>12.2}{:>14.0}{:>12.1}{:>14.2}{:>14}\n",
            r.config.scheduler.label(),
            r.report.overall.mean_slowdown,
            r.report.overall.mean_turnaround,
            r.utilization_pct(),
            aggregate_row(&r.report, 0),
            r.sim.preemptions
        ));
    }
    out.push_str(concat!(
        "\nGang scheduling serves short jobs within a quantum like IS, but pays\n",
        "in utilization (unevenly filled slots idle capacity) and in context-\n",
        "switch volume; TSS reaches similar short-job service at a fraction of\n",
        "the preemptions and without the utilization loss.\n",
    ));
    out
}

/// Price of the local-restart constraint: SS with and without process
/// migration (suspended jobs restarting on any free processors).
pub fn ablation_migration() -> String {
    use sps_core::sched::ss::{SelectiveSuspension, SsConfig};
    use sps_core::sim::Simulator;
    let mut out =
        String::from("Ablation: local preemption (paper's model) vs free migration, SS SF=2\n");
    out.push_str(&format!(
        "{:<10}{:<12}{:>12}{:>12}{:>14}{:>14}\n",
        "system", "restart", "overall sd", "util %", "worst sd", "preemptions"
    ));
    for system in [CTC, SDSC] {
        for load in [1.0, 1.6] {
            let jobs = ExperimentConfig::new(system, SchedulerKind::Easy)
                .with_load_factor(load)
                .trace();
            for migration in [false, true] {
                let mut cfg = SsConfig::ss(2.0);
                cfg.migration = migration;
                let res = Simulator::new(
                    jobs.clone(),
                    system.procs,
                    Box::new(SelectiveSuspension::new(cfg)),
                )
                .run();
                let rep = CategoryReport::from_outcomes(&res.outcomes);
                let util = sps_metrics::utilization(&res.outcomes, system.procs);
                out.push_str(&format!(
                    "{:<10}{:<12}{:>12.2}{:>12.1}{:>14.1}{:>14}\n",
                    format!("{} x{load}", system.name),
                    if migration { "anywhere" } else { "same procs" },
                    rep.overall.mean_slowdown,
                    util * 100.0,
                    rep.overall.worst_slowdown,
                    res.preemptions
                ));
            }
        }
    }
    out.push_str(concat!(
        "\nMigration removes the exact-processor re-entry constraint; the gap\n",
        "between the rows is the price the distributed-memory model pays for\n",
        "suspend/restart without process migration.\n",
    ));
    out
}

/// Diurnal arrival burstiness: the biggest workload-realism residual
/// (EXPERIMENTS.md) quantified.
pub fn ablation_diurnal() -> String {
    use sps_core::sim::Simulator;
    use sps_workload::SyntheticConfig;
    let mut out = String::from(
        "Ablation: diurnal arrival modulation (intensity 1 + a*sin, noon peak), CTC\n",
    );
    out.push_str(&format!(
        "{:<12}{:<10}{:>12}{:>14}{:>12}\n",
        "amplitude", "scheme", "overall sd", "VS mean sd", "util %"
    ));
    for amplitude in [0.0, 0.4, 0.8] {
        let jobs = SyntheticConfig::new(CTC, 42)
            .with_diurnal(amplitude)
            .generate();
        for kind in [SchedulerKind::Easy, SchedulerKind::Tss { sf: 2.0 }] {
            let res = Simulator::new(jobs.clone(), CTC.procs, kind.build()).run();
            let rep = CategoryReport::from_outcomes(&res.outcomes);
            let util = sps_metrics::utilization(&res.outcomes, CTC.procs);
            out.push_str(&format!(
                "{:<12}{:<10}{:>12.2}{:>14.2}{:>12.1}\n",
                amplitude,
                kind.label(),
                rep.overall.mean_slowdown,
                aggregate_row(&rep, 0),
                util * 100.0
            ));
        }
    }
    out.push_str(concat!(
        "\nDaytime bursts raise queueing at the same offered load (the real logs'\n",
        "regime); preemption's advantage persists and grows with burstiness.\n",
    ));
    out
}

/// KTH: the paper's third trace, reported only as \"similar performance
/// trends\". Verify the headline orderings hold on the 100-processor
/// machine too.
pub fn kth_trends() -> String {
    use sps_workload::traces::KTH;
    let mut out = String::from("KTH (100 procs): the paper's third trace — trend check\n");
    let configs = vec![
        ExperimentConfig::new(KTH, SchedulerKind::Easy),
        ExperimentConfig::new(KTH, SchedulerKind::Ss { sf: 2.0 }),
        ExperimentConfig::new(KTH, SchedulerKind::Tss { sf: 2.0 }),
        ExperimentConfig::new(KTH, SchedulerKind::ImmediateService),
    ];
    let results = run_cached(configs);
    let grids: Vec<(String, [f64; 16])> = results
        .iter()
        .map(|r| (r.config.scheduler.label(), r.report.mean_slowdown_grid()))
        .collect();
    let named: Vec<(&str, [f64; 16])> = grids.iter().map(|(n, g)| (n.as_str(), *g)).collect();
    out.push_str(&render_comparison("average slowdown per category", &named));
    out.push('\n');
    for r in &results {
        out.push_str(&format!(
            "{:<14} overall sd {:>6.2}, util {:>5.1}%, preemptions {}\n",
            r.config.scheduler.label(),
            r.report.overall.mean_slowdown,
            r.utilization_pct(),
            r.sim.preemptions
        ));
    }
    out.push_str("\nSame orderings as CTC/SDSC: SS/TSS crush the short categories, IS\nwins only very-short, NS queues the short-wide jobs hardest.\n");
    out
}

/// Preemption-routine period sensitivity.
pub fn ablation_preemption_period() -> String {
    use sps_core::sched::ss::SelectiveSuspension;
    use sps_core::sim::Simulator;
    let system = CTC;
    let jobs = ExperimentConfig::new(system, SchedulerKind::Easy).trace();
    let mut out =
        String::from("Ablation: preemption-routine period (paper: 60 s), SS SF=2 on CTC\n");
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>14}\n",
        "period (s)", "overall sd", "VS mean sd", "preemptions"
    ));
    for period in [10, 60, 300, 1_800] {
        let res = Simulator::with_overhead_and_tick(
            jobs.clone(),
            system.procs,
            Box::new(SelectiveSuspension::ss(2.0)),
            OverheadModel::None,
            period,
        )
        .run();
        let rep = CategoryReport::from_outcomes(&res.outcomes);
        out.push_str(&format!(
            "{:<12}{:>14.2}{:>14.2}{:>14}\n",
            period,
            rep.overall.mean_slowdown,
            aggregate_row(&rep, 0),
            res.preemptions
        ));
    }
    out.push_str("\nCoarser periods delay preemptions, raising short-job slowdowns.\n");
    out
}

/// Robustness: an MTBF sweep over the recovery policies. Not a paper
/// artifact — the paper assumes reliable hardware — but the fault model
/// stresses exactly the mechanism the paper proposes: suspended jobs are
/// pinned to their processors, so a processor death turns a cheap
/// suspension into lost work or a stranded wait.
pub fn ablation_faults() -> String {
    use sps_core::faults::{FaultModel, RecoveryPolicy};
    use sps_metrics::goodput;
    let mut out = String::from(
        "Ablation: processor failures (exponential per-proc MTBF, MTTR 3600 s), SDSC x1.2\n",
    );
    out.push_str(&format!(
        "{:<12}{:<10}{:<10}{:>10}{:>8}{:>14}{:>10}{:>12}{:>11}\n",
        "mtbf (s)",
        "scheme",
        "recovery",
        "failures",
        "kills",
        "lost proc-s",
        "stranded",
        "goodput %",
        "overall sd"
    ));
    for mtbf in [20_000_000, 5_000_000, 2_000_000] {
        for kind in [SchedulerKind::Easy, SchedulerKind::Ss { sf: 2.0 }] {
            for recovery in [RecoveryPolicy::WaitForRepair, RecoveryPolicy::Remap] {
                if kind == SchedulerKind::Easy && recovery != RecoveryPolicy::WaitForRepair {
                    continue; // NS never suspends, so recovery is moot
                }
                let cfg = ExperimentConfig::new(SDSC, kind)
                    .with_jobs(400)
                    .with_seed(7)
                    .with_load_factor(1.2)
                    .with_faults(FaultModel::proc_faults(mtbf, 3_600, 13).with_recovery(recovery));
                let r = &run_cached(vec![cfg])[0];
                let f = r.sim.faults;
                out.push_str(&format!(
                    "{:<12}{:<10}{:<10}{:>10}{:>8}{:>14}{:>10}{:>12.1}{:>11.2}\n",
                    mtbf,
                    r.config.scheduler.to_string(),
                    recovery.name(),
                    f.proc_failures,
                    f.jobs_killed + f.job_crashes,
                    f.lost_work,
                    f.stranded_secs,
                    goodput(&r.sim.outcomes, SDSC.procs, f.downtime) * 100.0,
                    r.report.overall.mean_slowdown,
                ));
            }
        }
    }
    out.push_str(concat!(
        "\nKills restart jobs from scratch, so lost work grows as MTBF shrinks.\n",
        "Only WaitForRepair accumulates stranded time: a suspended job whose\n",
        "reserved processor died sits out the whole repair, while Remap\n",
        "restarts it elsewhere at the cost of counting as a migration.\n",
    ));
    out
}

/// The preemption continuum under failures: in-place suspension (the
/// paper's model) vs checkpoint-restart vs migration on the same failure
/// schedule, for the preemptive schedulers and the IS baseline whose
/// constant preemption multiplies the kill penalty.
pub fn ablation_checkpoint() -> String {
    use sps_core::checkpoint::{CheckpointModel, PreemptionMode};
    use sps_core::faults::{FaultModel, RecoveryPolicy};
    use sps_metrics::goodput;
    let mut out = String::from(
        "Ablation: preemption continuum under failures (MTBF 1M s, MTTR 3600 s, \
         resubmit), SDSC x1.2, 30-min checkpoints\n",
    );
    out.push_str(&format!(
        "{:<12}{:<10}{:>8}{:>14}{:>13}{:>12}{:>12}{:>11}\n",
        "mode",
        "scheme",
        "kills",
        "lost proc-s",
        "ckpt proc-s",
        "migrations",
        "goodput %",
        "overall sd"
    ));
    for mode in PreemptionMode::ALL {
        for kind in [
            SchedulerKind::Ss { sf: 2.0 },
            SchedulerKind::Tss { sf: 2.0 },
            SchedulerKind::ImmediateService,
        ] {
            let cfg = ExperimentConfig::new(SDSC, kind)
                .with_jobs(400)
                .with_seed(7)
                .with_load_factor(1.2)
                .with_faults(
                    FaultModel::proc_faults(1_000_000, 3_600, 13)
                        .with_recovery(RecoveryPolicy::Resubmit),
                )
                .with_preemption(mode)
                .with_checkpoint(CheckpointModel::paper().with_interval(1_800));
            let r = &run_cached(vec![cfg])[0];
            let f = r.sim.faults;
            out.push_str(&format!(
                "{:<12}{:<10}{:>8}{:>14}{:>13}{:>12}{:>12.1}{:>11.2}\n",
                mode.name(),
                r.config.scheduler.to_string(),
                f.jobs_killed + f.job_crashes,
                f.lost_work,
                f.ckpt_overhead,
                f.migrations,
                goodput(&r.sim.outcomes, SDSC.procs, f.downtime) * 100.0,
                r.report.overall.mean_slowdown,
            ));
        }
    }
    out.push_str(concat!(
        "\nCheckpoints bound each kill's loss to under one interval, so lost\n",
        "work collapses and goodput recovers — most dramatically for IS, whose\n",
        "constant preemption under in-place restart multiplies redone work.\n",
        "Migration additionally unpins suspended claims (restart on any free\n",
        "set), trading a restore stall for never waiting on a dead processor.\n",
    ));
    out
}

/// Kernel decide-throughput summary: events/sec and decide counts per
/// scheme on a high-load SDSC trace, from the per-run
/// [`sps_core::sim::KernelStats`]. The full before/after microbench (with
/// decide-latency percentiles) is `cargo bench --bench decide_throughput`;
/// this registry entry gives a quick single-run view.
pub fn kernel_throughput() -> String {
    use sps_core::sim::Simulator;
    let mut out =
        String::from("Kernel throughput (SDSC trace, 1200 jobs, load factor 1.4, single run)\n\n");
    out.push_str(&format!(
        "{:<14}{:>10}{:>10}{:>12}{:>14}\n",
        "scheme", "events", "decides", "wall ms", "events/s"
    ));
    let jobs = ExperimentConfig::new(SDSC, SchedulerKind::Easy)
        .with_jobs(1_200)
        .with_load_factor(1.4)
        .trace();
    for kind in [
        SchedulerKind::Easy,
        SchedulerKind::Conservative,
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Tss { sf: 2.0 },
        SchedulerKind::ImmediateService,
    ] {
        let res = Simulator::new(jobs.clone(), SDSC.procs, kind.build()).run();
        let k = res.kernel;
        out.push_str(&format!(
            "{:<14}{:>10}{:>10}{:>12.1}{:>14.0}\n",
            kind.label(),
            k.events,
            k.decide_calls,
            k.wall_micros as f64 / 1e3,
            k.events_per_sec().unwrap_or(0.0),
        ));
    }
    out.push_str("\nWall time is per-process and machine-dependent; event and decide\ncounts are deterministic.\n");
    out
}
