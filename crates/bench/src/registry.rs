//! Experiment registry: id → (description, runner).

use crate::experiments as x;

/// One reproducible artifact.
pub struct Entry {
    /// Command-line id.
    pub id: &'static str,
    /// One-line description (paper artifact it regenerates).
    pub description: &'static str,
    /// Renderer.
    pub run: fn() -> String,
}

/// The full registry, in paper order.
pub fn entries() -> Vec<Entry> {
    macro_rules! e {
        ($id:ident, $desc:expr) => {
            Entry {
                id: stringify!($id),
                description: $desc,
                run: x::$id,
            }
        };
    }
    vec![
        e!(table1, "Table I: 16-category criteria"),
        e!(table2, "Table II: CTC job mix vs calibration target"),
        e!(table3, "Table III: SDSC job mix vs calibration target"),
        e!(table4, "Table IV: NS average slowdowns per category, CTC"),
        e!(table5, "Table V: NS average slowdowns per category, SDSC"),
        e!(
            fig4_6,
            "Figs 4-6: two-task alternation vs suspension factor"
        ),
        e!(fig7, "Fig 7: average slowdown, SS vs NS vs IS, CTC"),
        e!(fig8, "Fig 8: average turnaround, SS vs NS vs IS, CTC"),
        e!(fig9, "Fig 9: average slowdown, SS vs NS vs IS, SDSC"),
        e!(fig10, "Fig 10: average turnaround, SS vs NS vs IS, SDSC"),
        e!(fig11, "Fig 11: worst-case slowdown, CTC"),
        e!(fig12, "Fig 12: worst-case turnaround, CTC"),
        e!(fig13, "Fig 13: TSS worst-case slowdown, CTC"),
        e!(fig14, "Fig 14: TSS worst-case turnaround, CTC"),
        e!(fig15, "Fig 15: worst-case slowdown, SDSC"),
        e!(fig16, "Fig 16: worst-case turnaround, SDSC"),
        e!(fig17, "Fig 17: TSS worst-case slowdown, SDSC"),
        e!(fig18, "Fig 18: TSS worst-case turnaround, SDSC"),
        e!(fig19, "Fig 19: slowdown, inaccurate estimates, CTC"),
        e!(fig20, "Fig 20: slowdown, well estimated jobs, CTC"),
        e!(fig21, "Fig 21: slowdown, badly estimated jobs, CTC"),
        e!(fig22, "Fig 22: turnaround, inaccurate estimates, CTC"),
        e!(fig23, "Fig 23: turnaround, well estimated jobs, CTC"),
        e!(fig24, "Fig 24: turnaround, badly estimated jobs, CTC"),
        e!(fig25, "Fig 25: slowdown, inaccurate estimates, SDSC"),
        e!(fig26, "Fig 26: slowdown, well estimated jobs, SDSC"),
        e!(fig27, "Fig 27: slowdown, badly estimated jobs, SDSC"),
        e!(fig28, "Fig 28: turnaround, inaccurate estimates, SDSC"),
        e!(fig29, "Fig 29: turnaround, well estimated jobs, SDSC"),
        e!(fig30, "Fig 30: turnaround, badly estimated jobs, SDSC"),
        e!(fig31, "Fig 31: slowdown with suspension overhead, CTC"),
        e!(fig32, "Fig 32: turnaround with suspension overhead, CTC"),
        e!(fig33, "Fig 33: slowdown with suspension overhead, SDSC"),
        e!(fig34, "Fig 34: turnaround with suspension overhead, SDSC"),
        e!(table6, "Table VI: 4-category criteria"),
        e!(table7, "Table VII: coarse job mix, CTC"),
        e!(table8, "Table VIII: coarse job mix, SDSC"),
        e!(fig35, "Fig 35: utilization vs load, CTC"),
        e!(fig36, "Fig 36: slowdown vs load per category, CTC"),
        e!(fig37, "Fig 37: turnaround vs load per category, CTC"),
        e!(fig38, "Fig 38: utilization vs load, SDSC"),
        e!(fig39, "Fig 39: slowdown vs load per category, SDSC"),
        e!(fig40, "Fig 40: turnaround vs load per category, SDSC"),
        e!(fig41, "Fig 41: slowdown vs utilization, CTC"),
        e!(fig42, "Fig 42: turnaround vs utilization, CTC"),
        e!(fig43, "Fig 43: slowdown vs utilization, SDSC"),
        e!(fig44, "Fig 44: turnaround vs utilization, SDSC"),
        e!(
            kth_trends,
            "KTH trace: trend check (paper reports 'similar trends')"
        ),
        e!(timeline, "Occupancy-over-time sparklines per scheme"),
        e!(percentiles, "Slowdown tail percentiles per scheme"),
        e!(ablation_sf_sweep, "Ablation: fine suspension-factor sweep"),
        e!(
            ablation_width_restriction,
            "Ablation: the half-width suspend rule"
        ),
        e!(ablation_tss_limit_source, "Ablation: TSS limit source"),
        e!(
            ablation_preemption_period,
            "Ablation: preemption-routine period"
        ),
        e!(ablation_gang, "Ablation: gang scheduling baseline"),
        e!(
            ablation_migration,
            "Ablation: local restart vs free migration"
        ),
        e!(ablation_diurnal, "Ablation: diurnal arrival burstiness"),
        e!(
            ablation_reservation_depth,
            "Ablation: backfilling reservation depth"
        ),
        e!(
            ablation_faults,
            "Robustness: MTBF sweep over failure-recovery policies"
        ),
        e!(
            ablation_checkpoint,
            "Robustness: preemption continuum (suspend/checkpoint/migrate) under failures"
        ),
        e!(
            kernel_throughput,
            "Kernel decide-throughput summary per scheme"
        ),
    ]
}

/// Ids of all registered experiments, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    entries().iter().map(|e| e.id).collect()
}

/// Description of an experiment id.
pub fn describe(id: &str) -> Option<&'static str> {
    entries()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| e.description)
}

/// Run one experiment, returning its rendered text. `None` for unknown
/// ids.
pub fn run_experiment(id: &str) -> Option<String> {
    entries()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids = all_ids();
        // 8 tables + figs 4-6 + figs 7-44 + KTH + timeline/percentiles
        // + 8 ablations + the two fault-robustness sweeps + kernel
        // throughput.
        assert_eq!(ids.len(), 8 + 1 + 38 + 3 + 10 + 1);
        // No duplicates.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        for fig in 7..=44 {
            assert!(
                ids.contains(&format!("fig{fig}").as_str()),
                "fig{fig} missing"
            );
        }
        for t in 1..=8 {
            assert!(
                ids.contains(&format!("table{t}").as_str()),
                "table{t} missing"
            );
        }
    }

    #[test]
    fn describe_and_unknown() {
        assert!(describe("table4").unwrap().contains("Table IV"));
        assert!(describe("nope").is_none());
        assert!(run_experiment("nope").is_none());
    }

    #[test]
    fn static_tables_render_without_simulation() {
        let t1 = run_experiment("table1").unwrap();
        assert!(t1.contains("VS Seq") && t1.contains("VL VW"));
        let t6 = run_experiment("table6").unwrap();
        assert!(t6.contains("SN") && t6.contains("LW"));
    }
}
