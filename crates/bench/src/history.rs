//! Dated performance history for the `BENCH_*.json` report files.
//!
//! The repo-root bench reports (`BENCH_kernel.json`, `BENCH_sweep.json`)
//! used to be overwritten wholesale on every full bench run, which meant
//! the perf trajectory across PRs lived only in git archaeology. This
//! module gives each case a `history` array of dated entries that is
//! *appended to*, never rewritten: a `--guard` run measures, appends
//! `{date, ...metrics}` to the case it measured, and diffs the fresh
//! number against the **best** prior entry (the max over the recorded
//! `after` block and every history entry) rather than just the last one,
//! so two consecutive regressions cannot ratchet the baseline down.
//!
//! Files are read and written with the hand-rolled [`sps_trace::Json`]
//! codec — no external serialization crates — and rendered with a small
//! pretty-printer so the reports stay reviewable in diffs.

use std::fmt::Write as _;
use std::path::Path;

use sps_trace::Json;

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock.
///
/// Uses Howard Hinnant's `civil_from_days` algorithm so the bench
/// binaries need no calendar dependency.
pub fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Load and parse a bench report; `None` if the file is missing or does
/// not parse (the caller decides whether that is fatal).
pub fn load(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match Json::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("warning: {path} does not parse ({e}); ignoring it");
            None
        }
    }
}

/// Write a report back, pretty-printed, with a trailing newline.
pub fn store(path: &str, doc: &Json) -> std::io::Result<()> {
    std::fs::write(Path::new(path), render_pretty(doc) + "\n")
}

/// The named case object inside `doc.cases`, if present.
pub fn find_case<'a>(doc: &'a Json, case: &str) -> Option<&'a Json> {
    doc.get("cases")?
        .as_arr()?
        .iter()
        .find(|c| c.get("case").and_then(Json::as_str) == Some(case))
}

/// Best recorded value of `metric` for `case`: the max over the case's
/// `after.<metric>` and every `history[].<metric>`. `None` when the case
/// is absent or records the metric nowhere.
pub fn best_metric(doc: &Json, case: &str, metric: &str) -> Option<f64> {
    let case = find_case(doc, case)?;
    let mut best: Option<f64> = None;
    let mut consider = |v: Option<f64>| {
        if let Some(v) = v {
            best = Some(best.map_or(v, |b| b.max(v)));
        }
    };
    consider(
        case.get("after")
            .and_then(|a| a.get(metric))
            .and_then(Json::as_f64),
    );
    if let Some(entries) = case.get("history").and_then(Json::as_arr) {
        for e in entries {
            consider(e.get(metric).and_then(Json::as_f64));
        }
    }
    best
}

/// Append `entry` to the named case's `history` array, creating the
/// array if the case has none yet. Returns `false` if the case itself is
/// missing (nothing is modified).
pub fn append_entry(doc: &mut Json, case: &str, entry: Json) -> bool {
    let Json::Obj(pairs) = doc else { return false };
    let Some(cases) = pairs.iter_mut().find(|(k, _)| k == "cases").map(|(_, v)| v) else {
        return false;
    };
    let Json::Arr(cases) = cases else {
        return false;
    };
    let Some(case) = cases
        .iter_mut()
        .find(|c| c.get("case").and_then(Json::as_str) == Some(case))
    else {
        return false;
    };
    let Json::Obj(fields) = case else {
        return false;
    };
    if !fields.iter().any(|(k, _)| k == "history") {
        fields.push(("history".to_string(), Json::Arr(Vec::new())));
    }
    let Some(Json::Arr(history)) = fields
        .iter_mut()
        .find(|(k, _)| k == "history")
        .map(|(_, v)| v)
    else {
        return false;
    };
    history.push(entry);
    true
}

/// Replace (or insert) the named case wholesale, preserving every other
/// case in the report — including cases written by other benches — and
/// carrying the old case's `history` array over onto the replacement if
/// the replacement does not bring its own.
pub fn upsert_case(doc: &mut Json, case_name: &str, mut case: Json) {
    let Json::Obj(pairs) = doc else { return };
    if !pairs.iter().any(|(k, _)| k == "cases") {
        pairs.push(("cases".to_string(), Json::Arr(Vec::new())));
    }
    let Some(Json::Arr(cases)) = pairs.iter_mut().find(|(k, _)| k == "cases").map(|(_, v)| v)
    else {
        return;
    };
    let slot = cases
        .iter_mut()
        .find(|c| c.get("case").and_then(Json::as_str) == Some(case_name));
    match slot {
        Some(old) => {
            if case.get("history").is_none() {
                if let Some(h) = old.get("history") {
                    if let Json::Obj(fields) = &mut case {
                        fields.push(("history".to_string(), h.clone()));
                    }
                }
            }
            *old = case;
        }
        None => cases.push(case),
    }
}

/// Shorthand for building a `Json::Obj` from literal pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Render with two-space indentation: scalars inline, non-empty objects
/// and arrays one element per line, matching the hand-written style the
/// reports started with so diffs stay line-oriented.
pub fn render_pretty(json: &Json) -> String {
    let mut out = String::new();
    write_pretty(json, 0, &mut out);
    out
}

fn write_pretty(json: &Json, depth: usize, out: &mut String) {
    match json {
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                indent(depth + 1, out);
                let _ = write!(out, "{}: ", Json::Str(k.clone()).render());
                write_pretty(v, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push('}');
        }
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
        other => out.push_str(&other.render()),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Json {
        Json::parse(
            r#"{
              "benchmark": "x",
              "cases": [
                {"case": "a", "after": {"events_per_sec": 100.0},
                 "history": [{"date": "2026-08-01", "events_per_sec": 140.0},
                             {"date": "2026-08-05", "events_per_sec": 120.0}]},
                {"case": "b", "after": {"events_per_sec": 50.0}}
              ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn best_metric_takes_the_max_over_after_and_history() {
        let doc = report();
        // "a" peaked at 140 in history; the guard must diff against that,
        // not the last entry (120) or the after block (100).
        assert_eq!(best_metric(&doc, "a", "events_per_sec"), Some(140.0));
        assert_eq!(best_metric(&doc, "b", "events_per_sec"), Some(50.0));
        assert_eq!(best_metric(&doc, "c", "events_per_sec"), None);
        assert_eq!(best_metric(&doc, "a", "nope"), None);
    }

    #[test]
    fn append_entry_extends_and_creates_history() {
        let mut doc = report();
        let e = obj(vec![
            ("date", Json::Str("2026-08-08".into())),
            ("events_per_sec", Json::Num(130.0)),
        ]);
        assert!(append_entry(&mut doc, "a", e.clone()));
        assert!(append_entry(&mut doc, "b", e.clone()));
        assert!(!append_entry(&mut doc, "missing", e));
        let a = find_case(&doc, "a").unwrap();
        assert_eq!(a.get("history").unwrap().as_arr().unwrap().len(), 3);
        let b = find_case(&doc, "b").unwrap();
        assert_eq!(b.get("history").unwrap().as_arr().unwrap().len(), 1);
        // Appending a slower entry never lowers the guard baseline.
        assert_eq!(best_metric(&doc, "a", "events_per_sec"), Some(140.0));
    }

    #[test]
    fn upsert_preserves_other_cases_and_carries_history() {
        let mut doc = report();
        let fresh = obj(vec![
            ("case", Json::Str("a".into())),
            ("after", obj(vec![("events_per_sec", Json::Num(150.0))])),
        ]);
        upsert_case(&mut doc, "a", fresh);
        let a = find_case(&doc, "a").unwrap();
        assert_eq!(
            a.get("after").unwrap().get("events_per_sec"),
            Some(&Json::Num(150.0))
        );
        // The old history rode along onto the replacement.
        assert_eq!(a.get("history").unwrap().as_arr().unwrap().len(), 2);
        assert!(find_case(&doc, "b").is_some(), "other cases survive");

        let new_case = obj(vec![("case", Json::Str("c".into()))]);
        upsert_case(&mut doc, "c", new_case);
        assert!(find_case(&doc, "c").is_some(), "unknown cases are appended");
    }

    #[test]
    fn pretty_rendering_reparses_identically() {
        let mut doc = report();
        append_entry(&mut doc, "a", obj(vec![("date", Json::Str(today()))]));
        let text = render_pretty(&doc);
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Line-oriented: every case object opens on its own line.
        assert!(text.lines().count() > 10, "pretty output is multi-line");
    }

    #[test]
    fn today_is_a_plausible_iso_date() {
        let d = today();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        let year: i32 = d[..4].parse().unwrap();
        assert!((2024..2100).contains(&year), "year {year} in sane range");
    }
}
