//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion dependency was
//! replaced by this hand-rolled harness: warm up, time `iters`
//! executions per sample, take several samples, and report min / median
//! / mean. Output is one line per benchmark —
//!
//! ```text
//! sim_throughput/ctc_2000_jobs/easy   median 12.431 ms   min 12.102 ms   mean 12.633 ms
//! ```
//!
//! Use `Harness::new("group")` in a `fn main()` bench target (all bench
//! targets set `harness = false`). Pass `--quick` on the command line to
//! cut samples for a fast smoke run, or a substring filter to run only
//! matching benchmarks (mirrors `cargo bench -- <filter>`).

use std::time::{Duration, Instant};

/// One benchmark group; prints results as benchmarks run.
pub struct Harness {
    group: String,
    filter: Option<String>,
    samples: usize,
    min_sample_time: Duration,
}

impl Harness {
    /// Create a harness, reading `--quick` and an optional substring
    /// filter from the process arguments.
    pub fn new(group: &str) -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                "--bench" | "--test" => {} // flags cargo bench passes through
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Harness {
            group: group.to_string(),
            filter,
            samples: if quick { 3 } else { 10 },
            min_sample_time: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(100)
            },
        }
    }

    /// Time `f`, printing a one-line summary. The closure's return value
    /// is passed through `std::hint::black_box` so work is not optimized
    /// away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and size the per-sample iteration count so each sample
        // runs for at least `min_sample_time`.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.min_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{full:<48} median {:>12}   min {:>12}   mean {:>12}   ({iters} iters x {} samples)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(mean),
            self.samples,
        );
    }
}

/// Render seconds with an auto-selected unit.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_time;

    #[test]
    fn time_units_scale() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(0.0000025), "2.500 µs");
        assert_eq!(fmt_time(0.0000000025), "2.5 ns");
    }
}
