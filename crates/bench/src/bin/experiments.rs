//! Command-line entry point for the reproduction harness.
//!
//! ```text
//! experiments list            # show every artifact id
//! experiments all             # regenerate everything into results/
//! experiments fig9 table4 …   # regenerate specific artifacts
//! ```
//!
//! Output goes to stdout and, when a `results/` directory exists (or can
//! be created), to `results/<id>.txt`.

use std::io::Write as _;

use sps_bench::{all_ids, describe, run_experiment};

fn usage() -> ! {
    eprintln!("usage: experiments <list|all|ID...>");
    eprintln!("known ids:");
    for id in all_ids() {
        eprintln!("  {:<28} {}", id, describe(id).unwrap_or(""));
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for id in all_ids() {
            println!("{:<28} {}", id, describe(id).unwrap_or(""));
        }
        return;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        all_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let out_dir = std::path::Path::new("results");
    let write_files = std::fs::create_dir_all(out_dir).is_ok();
    for id in ids {
        let started = std::time::Instant::now();
        let Some(text) = run_experiment(id) else {
            eprintln!("unknown experiment id: {id}");
            usage();
        };
        println!("----------------------------------------------------------------------");
        println!("{text}");
        eprintln!("[{id} done in {:.1?}]", started.elapsed());
        if write_files {
            let path = out_dir.join(format!("{id}.txt"));
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(text.as_bytes());
                }
                Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
            }
        }
    }
}
