//! # sps-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation, plus the ablation studies for the design decisions
//! called out in DESIGN.md.
//!
//! Run `cargo run --release -p sps-bench --bin experiments -- all` to
//! reproduce everything into `results/`, or pass a single id (`table4`,
//! `fig9`, `ablation_sf_sweep`, …). The wall-clock benches under
//! `benches/` measure the simulator itself (events/sec, scaling, hot
//! paths) on the hand-rolled [`harness`].

pub mod experiments;
pub mod harness;
pub mod history;
pub mod registry;

pub use harness::Harness;
pub use registry::{all_ids, describe, run_experiment};
