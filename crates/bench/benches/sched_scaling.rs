//! Scaling of simulation cost with trace length: the scheduler decision
//! loops are the asymptotic term (each decision scans queue × running),
//! so doubling the trace should land well under 4× the wall time at these
//! sizes.

use sps_bench::Harness;
use sps_core::experiment::SchedulerKind;
use sps_core::sim::Simulator;
use sps_workload::traces::SDSC;
use sps_workload::SyntheticConfig;

fn main() {
    let h = Harness::new("sched_scaling");

    for &n in &[500usize, 2_000, 8_000] {
        let jobs = SyntheticConfig::new(SDSC, 7).with_jobs(n).generate();
        for kind in [SchedulerKind::Easy, SchedulerKind::Tss { sf: 2.0 }] {
            h.bench(&format!("trace_length_scaling/{kind}/{n}"), || {
                let res = Simulator::new(jobs.clone(), SDSC.procs, kind.build()).run();
                res.makespan
            });
        }
    }

    // Higher load = longer queues = more expensive decisions.
    for &lf in &[1.0f64, 1.5, 2.0] {
        let jobs = SyntheticConfig::new(SDSC, 7)
            .with_jobs(2_000)
            .with_load_factor(lf)
            .generate();
        h.bench(&format!("load_level_cost/{lf}"), || {
            let res = Simulator::new(
                jobs.clone(),
                SDSC.procs,
                SchedulerKind::Tss { sf: 2.0 }.build(),
            )
            .run();
            res.preemptions
        });
    }
}
