//! Scaling of simulation cost with trace length: the scheduler decision
//! loops are the asymptotic term (each decision scans queue × running),
//! so doubling the trace should land well under 4× the wall time at these
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sps_core::experiment::SchedulerKind;
use sps_core::sim::Simulator;
use sps_workload::traces::SDSC;
use sps_workload::SyntheticConfig;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_length_scaling");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 8_000] {
        let jobs = SyntheticConfig::new(SDSC, 7).with_jobs(n).generate();
        group.throughput(Throughput::Elements(n as u64));
        for kind in [SchedulerKind::Easy, SchedulerKind::Tss { sf: 2.0 }] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &jobs,
                |b, jobs| {
                    b.iter(|| {
                        let res =
                            Simulator::new(jobs.clone(), SDSC.procs, kind.build()).run();
                        std::hint::black_box(res.makespan)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_load_levels(c: &mut Criterion) {
    // Higher load = longer queues = more expensive decisions.
    let mut group = c.benchmark_group("load_level_cost");
    group.sample_size(10);
    for &lf in &[1.0f64, 1.5, 2.0] {
        let jobs =
            SyntheticConfig::new(SDSC, 7).with_jobs(2_000).with_load_factor(lf).generate();
        group.bench_with_input(BenchmarkId::from_parameter(lf), &jobs, |b, jobs| {
            b.iter(|| {
                let res = Simulator::new(
                    jobs.clone(),
                    SDSC.procs,
                    SchedulerKind::Tss { sf: 2.0 }.build(),
                )
                .run();
                std::hint::black_box(res.preemptions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_load_levels);
criterion_main!(benches);
