//! Archive-scale mega-sweep bench: a synthetic million-job SWF log swept
//! streaming + lean, with peak-RSS evidence and a modeled 16-worker
//! sharding comparison.
//!
//! The bench writes its log **chunk-wise** ([`swf::write_chunked`]) so
//! the generator never materializes the workload either, then:
//!
//! 1. runs one small (100k-job) single run and records the process's
//!    peak RSS — the "independent of job count" reference point,
//! 2. runs the full grid (SS+TSS × 3 loads × 5 seeds = 30 runs) through
//!    [`run_mega_sweep`] on the work-stealing batch runner and records
//!    wall clock and peak RSS again,
//! 3. re-runs every grid point alone on one thread to get clean per-run
//!    wall times, and from those **models** the 16-worker makespan of
//!    the old whole-cell round-robin sharding versus work-stealing
//!    (greedy list scheduling, which stealing converges to). The host
//!    here may have a single core, so cross-thread wall clock cannot be
//!    measured directly; the model is computed from measured per-run
//!    walls and labeled as modeled in the report.
//!
//! A full run upserts the `mega_swf` case in `BENCH_sweep.json` and
//! appends a dated entry to its `history` array. `--smoke` (the CI step)
//! shrinks the log to 100k jobs and the grid to 2 runs on 8 threads and
//! does not touch the report's full-run case.
//!
//! `--guard` gates the run on its own throughput history: streamed
//! jobs/second must stay above half the best recorded value for the mode
//! (`mega_swf` full, `mega_swf_smoke` smoke). A missing baseline passes
//! and records the first entry, so the guard bootstraps itself on a
//! fresh report. `--timeline FILE` additionally runs the sweep with span
//! capture on and writes a Chrome-trace / Perfetto JSON timeline (one
//! lane per batch worker, per-cell spans with nested run-loop phases).

use std::path::PathBuf;
use std::time::Instant;

use sps_bench::history;
use sps_core::experiment::SchedulerKind;
use sps_core::{peak_rss_kb, run_mega_sweep, MegaSweepSpec};
use sps_trace::Json;
use sps_workload::traces::SDSC;
use sps_workload::{swf, EstimateModel};

const REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");

/// Jobs per generator batch: bounds writer memory at ~50k parsed jobs.
const CHUNK: usize = 50_000;

/// Greedy list scheduling of `walls` (seconds, expansion order) onto
/// `workers`: each run goes to the earliest-free worker. Work-stealing
/// converges to this schedule — a worker is only ever idle when every
/// queue (its own and every victim's) is empty.
fn stealing_makespan(walls: &[f64], workers: usize) -> f64 {
    let mut free = vec![0.0f64; workers.max(1)];
    for &w in walls {
        let i = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        free[i] += w;
    }
    free.iter().cloned().fold(0.0, f64::max)
}

/// The pre-work-stealing dispatch: whole cells round-robin over workers,
/// every replication of a cell pinned to its cell's worker.
fn cell_round_robin_makespan(walls: &[f64], reps: usize, workers: usize) -> f64 {
    let mut load = vec![0.0f64; workers.max(1)];
    for (cell, chunk) in walls.chunks(reps).enumerate() {
        load[cell % workers.max(1)] += chunk.iter().sum::<f64>();
    }
    load.iter().cloned().fold(0.0, f64::max)
}

fn grid(log: &PathBuf, smoke: bool) -> MegaSweepSpec {
    let spec = MegaSweepSpec::new(log, SDSC.procs)
        .with_schedulers(vec![
            SchedulerKind::Ss { sf: 2.0 },
            SchedulerKind::Tss { sf: 2.0 },
        ])
        .with_seed(42)
        .with_estimates(Some(EstimateModel::paper_mixture()));
    if smoke {
        spec.with_loads(vec![1.0]).with_reps(1)
    } else {
        spec.with_loads(vec![0.7, 0.85, 1.0]).with_reps(5)
    }
}

/// Fraction of the best recorded jobs/s a `--guard` run must reach.
const GUARD_FLOOR: f64 = 0.5;

fn main() {
    let mut smoke = false;
    let mut guard = false;
    let mut timeline: Option<String> = None;
    let mut jobs_override = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--quick" => smoke = true,
            "--guard" => guard = true,
            "--timeline" => timeline = args.next(),
            "--jobs" => {
                jobs_override = args.next().and_then(|v| v.parse::<usize>().ok());
            }
            _ => {}
        }
    }
    let n_jobs = jobs_override.unwrap_or(if smoke { 100_000 } else { 1_000_000 });
    let threads = if smoke { 8 } else { 16 };

    let dir = std::env::temp_dir().join(format!("sps-mega-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let log = dir.join(format!("synth-{n_jobs}.swf"));

    let t = Instant::now();
    swf::write_chunked(&log, SDSC, 42, n_jobs, CHUNK).expect("write log");
    let gen_wall = t.elapsed().as_secs_f64();
    let log_mb = std::fs::metadata(&log)
        .map(|m| m.len() / (1 << 20))
        .unwrap_or(0);
    eprintln!(
        "generated {n_jobs}-job log ({log_mb} MB) in {gen_wall:.1} s at {}",
        log.display()
    );

    // Reference point: one small single run, so the 1M sweep's peak RSS
    // has a same-process 100k-job number to be compared against.
    let small = dir.join("synth-small.swf");
    swf::write_chunked(&small, SDSC, 43, 100_000.min(n_jobs), CHUNK).expect("write small log");
    let small_spec = MegaSweepSpec::new(&small, SDSC.procs)
        .with_scheduler(SchedulerKind::Ss { sf: 2.0 })
        .with_estimates(Some(EstimateModel::paper_mixture()));
    let t = Instant::now();
    let small_report = run_mega_sweep(&small_spec, 1).expect("valid small spec");
    assert!(
        small_report.failures.is_empty(),
        "{:?}",
        small_report.failures
    );
    let rss_after_small = peak_rss_kb().unwrap_or(0);
    eprintln!(
        "100k-job reference run: {:.1} s, peak RSS {} kB",
        t.elapsed().as_secs_f64(),
        rss_after_small
    );

    // The sweep itself, on the work-stealing batch runner.
    let spec = grid(&log, smoke).with_timeline(timeline.is_some());
    eprintln!(
        "mega sweep: {} cells x {} reps = {} runs of {n_jobs} jobs on {threads} threads",
        spec.cells(),
        spec.reps,
        spec.runs(),
    );
    let t = Instant::now();
    let report = run_mega_sweep(&spec, threads).expect("valid mega spec");
    let sweep_wall = t.elapsed().as_secs_f64();
    let rss_after_sweep = peak_rss_kb().unwrap_or(0);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.skipped, 0);
    println!("{}", report.render_table());
    println!(
        "sweep wall {sweep_wall:.1} s, peak RSS {rss_after_sweep} kB (100k-job reference {rss_after_small} kB)",
    );

    if let Some(path) = &timeline {
        let mut tl = sps_telemetry::TimelineBuilder::new();
        tl.process_name(1, "mega_sweep bench");
        for w in &report.workers {
            tl.thread_name(1, w.worker as u32 + 1, &format!("worker {}", w.worker));
        }
        for s in &report.worker_spans {
            tl.complete(
                1,
                s.worker as u32 + 1,
                &format!("run {}", s.index),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            );
        }
        for (worker, spans) in &report.run_spans {
            tl.phase_spans(1, *worker as u32 + 1, 0, spans);
        }
        let events = tl.len();
        match std::fs::write(path, tl.render()) {
            Ok(()) => eprintln!("wrote {path} ({events} trace events)"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }

    if guard {
        // Gate on streamed jobs/second against the mode's own history —
        // smoke and full runs differ in log size, grid, and thread
        // count, so each keeps a separate case. A missing baseline
        // passes and records, bootstrapping a fresh report.
        let case_name = if smoke { "mega_swf_smoke" } else { "mega_swf" };
        let jobs_per_sec = n_jobs as f64 * report.runs as f64 / sweep_wall.max(1e-9);
        let mut doc = history::load(REPORT).unwrap_or_else(|| {
            history::obj(vec![
                (
                    "benchmark",
                    Json::Str("mega_sweep (crates/bench/benches/mega_sweep.rs)".into()),
                ),
                ("cases", Json::Arr(Vec::new())),
            ])
        });
        let violation = match history::best_metric(&doc, case_name, "jobs_per_sec") {
            Some(base) => {
                let floor = base * GUARD_FLOOR;
                println!(
                    "guard {case_name:<20} {:>6.1}% of best prior ({jobs_per_sec:.0} vs {base:.0} jobs/s, floor {floor:.0})",
                    jobs_per_sec / base * 100.0,
                );
                jobs_per_sec < floor
            }
            None => {
                println!(
                    "guard {case_name}: no jobs_per_sec baseline yet; recording {jobs_per_sec:.0} jobs/s as the first entry"
                );
                false
            }
        };
        if history::find_case(&doc, case_name).is_none() {
            history::upsert_case(
                &mut doc,
                case_name,
                history::obj(vec![("case", Json::Str(case_name.into()))]),
            );
        }
        history::append_entry(
            &mut doc,
            case_name,
            history::obj(vec![
                ("date", Json::Str(history::today())),
                ("jobs_per_sec", Json::Num(jobs_per_sec)),
                ("sweep_wall_s", Json::Num(sweep_wall)),
                ("jobs", Json::Int(n_jobs as i64)),
                ("threads", Json::Int(threads as i64)),
            ]),
        );
        // Record the run — regressions too — before the gate can exit.
        match history::store(REPORT, &doc) {
            Ok(()) => eprintln!("appended dated {case_name} history entry to {REPORT}"),
            Err(e) => eprintln!("warning: cannot write {REPORT}: {e}"),
        }
        if violation {
            eprintln!(
                "guard FAILED: {jobs_per_sec:.0} jobs/s is below {}% of the best prior",
                (GUARD_FLOOR * 100.0) as u32
            );
            let _ = std::fs::remove_dir_all(&dir);
            std::process::exit(1);
        }
    }

    // Clean per-run walls for the sharding model: each grid point alone.
    let mut walls = Vec::with_capacity(spec.runs());
    for &sched in &spec.schedulers {
        for &load in &spec.loads {
            for rep in 0..spec.reps {
                let one = MegaSweepSpec::new(&log, SDSC.procs)
                    .with_scheduler(sched)
                    .with_loads(vec![load])
                    .with_seed(spec.base_seed + rep as u64)
                    .with_estimates(spec.estimates);
                let r = run_mega_sweep(&one, 1).expect("valid single-run spec");
                assert!(r.failures.is_empty(), "{:?}", r.failures);
                walls.push(r.wall_micros as f64 / 1e6);
            }
        }
    }
    let seq_wall: f64 = walls.iter().sum();
    let steal_ms = stealing_makespan(&walls, 16);
    let static_ms = cell_round_robin_makespan(&walls, spec.reps, 16);
    let modeled_speedup = static_ms / steal_ms.max(1e-9);
    println!("modeled 16 workers (from measured per-run walls, sequential total {seq_wall:.1} s):");
    println!("  whole-cell round-robin (old dispatch): {static_ms:.1} s");
    println!("  work-stealing (greedy list schedule):  {steal_ms:.1} s");
    println!("  modeled speedup: {modeled_speedup:.2}x");

    let _ = std::fs::remove_dir_all(&dir);

    if smoke {
        println!("smoke OK: streaming mega sweep completed with no failures");
        return;
    }

    let date = history::today();
    let mut doc = history::load(REPORT).unwrap_or_else(|| {
        history::obj(vec![
            (
                "benchmark",
                Json::Str("mega_sweep (crates/bench/benches/mega_sweep.rs)".into()),
            ),
            ("cases", Json::Arr(Vec::new())),
        ])
    });
    let case = history::obj(vec![
        ("case", Json::Str("mega_swf".into())),
        (
            "workload",
            Json::Str(format!(
                "chunk-generated {n_jobs}-job SWF log, SDSC machine, {{SS 2.0, TSS 2.0}} x 3 loads x 5 seeds (30 streaming lean runs)"
            )),
        ),
        ("date", Json::Str(date.clone())),
        (
            "notes",
            Json::Str(
                "Every run streams the log through its own bounded read-ahead ring and folds \
                 completions in-simulator (lean), so peak RSS is O(machine), not O(jobs). The \
                 16-worker numbers are modeled from measured single-threaded per-run walls \
                 (greedy list schedule for stealing vs whole-cell round-robin for the old \
                 dispatch) because the bench host exposes a single core."
                    .into(),
            ),
        ),
        (
            "after",
            history::obj(vec![
                ("jobs", Json::Int(n_jobs as i64)),
                ("runs", Json::Int(walls.len() as i64)),
                ("gen_wall_s", Json::Num(gen_wall)),
                ("sweep_wall_s", Json::Num(sweep_wall)),
                ("seq_wall_s", Json::Num(seq_wall)),
                ("peak_rss_kb", Json::Int(rss_after_sweep as i64)),
                ("peak_rss_kb_100k_reference", Json::Int(rss_after_small as i64)),
            ]),
        ),
        (
            "modeled_16_workers",
            history::obj(vec![
                ("cell_round_robin_s", Json::Num(static_ms)),
                ("work_stealing_s", Json::Num(steal_ms)),
                ("speedup", Json::Num(modeled_speedup)),
            ]),
        ),
        ("speedup", Json::Num(modeled_speedup)),
    ]);
    history::upsert_case(&mut doc, "mega_swf", case);
    history::append_entry(
        &mut doc,
        "mega_swf",
        history::obj(vec![
            ("date", Json::Str(date)),
            ("speedup", Json::Num(modeled_speedup)),
            ("sweep_wall_s", Json::Num(sweep_wall)),
            ("peak_rss_kb", Json::Int(rss_after_sweep as i64)),
        ]),
    );
    match history::store(REPORT, &doc) {
        Ok(()) => eprintln!("updated {REPORT} (mega_swf case + dated history entry)"),
        Err(e) => eprintln!("warning: cannot write {REPORT}: {e}"),
    }
}
