//! Micro-benchmarks of the processor-set bitset — the innermost data
//! structure of victim selection and allocation (hundreds of operations
//! per scheduling decision).

use criterion::{criterion_group, criterion_main, Criterion};
use sps_cluster::ProcSet;

const UNIVERSE: u32 = 430;

fn sets() -> (ProcSet, ProcSet) {
    let a = ProcSet::from_indices(UNIVERSE, (0..UNIVERSE).filter(|i| i % 3 == 0));
    let b = ProcSet::from_indices(UNIVERSE, (0..UNIVERSE).filter(|i| i % 5 == 0));
    (a, b)
}

fn bench_algebra(c: &mut Criterion) {
    let (a, b) = sets();
    c.bench_function("procset_union", |bench| {
        bench.iter(|| std::hint::black_box(a.union(&b)).count())
    });
    c.bench_function("procset_is_subset", |bench| {
        bench.iter(|| std::hint::black_box(a.is_subset(&b)))
    });
    c.bench_function("procset_overlaps", |bench| {
        bench.iter(|| std::hint::black_box(a.overlaps(&b)))
    });
    c.bench_function("procset_count", |bench| bench.iter(|| std::hint::black_box(a.count())));
}

fn bench_allocation(c: &mut Criterion) {
    let free = ProcSet::full(UNIVERSE);
    c.bench_function("procset_take_lowest_32", |bench| {
        bench.iter(|| std::hint::black_box(free.take_lowest(32)))
    });
    c.bench_function("procset_take_lowest_336", |bench| {
        bench.iter(|| std::hint::black_box(free.take_lowest(336)))
    });
    let (a, _) = sets();
    c.bench_function("procset_iter_collect", |bench| {
        bench.iter(|| a.iter().collect::<Vec<u32>>().len())
    });
}

criterion_group!(benches, bench_algebra, bench_allocation);
criterion_main!(benches);
