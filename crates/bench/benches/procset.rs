//! Micro-benchmarks of the processor-set bitset — the innermost data
//! structure of victim selection and allocation (hundreds of operations
//! per scheduling decision).

use sps_bench::Harness;
use sps_cluster::ProcSet;

const UNIVERSE: u32 = 430;

fn sets() -> (ProcSet, ProcSet) {
    let a = ProcSet::from_indices(UNIVERSE, (0..UNIVERSE).filter(|i| i % 3 == 0));
    let b = ProcSet::from_indices(UNIVERSE, (0..UNIVERSE).filter(|i| i % 5 == 0));
    (a, b)
}

fn main() {
    let h = Harness::new("procset");

    let (a, b) = sets();
    h.bench("procset_union", || a.union(&b).count());
    h.bench("procset_is_subset", || a.is_subset(&b));
    h.bench("procset_overlaps", || a.overlaps(&b));
    h.bench("procset_count", || a.count());

    let free = ProcSet::full(UNIVERSE);
    h.bench("procset_take_lowest_32", || free.take_lowest(32));
    h.bench("procset_take_lowest_336", || free.take_lowest(336));
    h.bench("procset_iter_collect", || {
        a.iter().collect::<Vec<u32>>().len()
    });
}
