//! Simulator throughput: wall time to schedule a full CTC-scale trace
//! under each policy. This is the "can you actually use this simulator"
//! benchmark — a month of machine time should simulate in well under a
//! second. Also times the same run with a `JsonlSink` writing to a sink
//! buffer, to bound the tracing overhead (the `NullSink` default must be
//! free).

use sps_bench::Harness;
use sps_core::experiment::SchedulerKind;
use sps_core::sim::Simulator;
use sps_trace::{JsonlSink, NullSink};
use sps_workload::traces::{CTC, SDSC};
use sps_workload::{Job, SyntheticConfig};

fn trace(n: usize) -> Vec<Job> {
    SyntheticConfig::new(CTC, 42).with_jobs(n).generate()
}

fn sdsc_trace(n: usize) -> Vec<Job> {
    SyntheticConfig::new(SDSC, 42).with_jobs(n).generate()
}

fn policies() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Fcfs,
        SchedulerKind::Conservative,
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Tss { sf: 2.0 },
    ]
}

fn main() {
    let h = Harness::new("sim_throughput");

    let jobs = trace(2_000);
    for kind in policies() {
        h.bench(&format!("ctc_2000_jobs/{kind}"), || {
            let res = Simulator::new(jobs.clone(), CTC.procs, kind.build()).run();
            res.outcomes.len()
        });
    }

    // The 128-processor machine exercises the preemption paths far more
    // (its synthetic mix suspends an order of magnitude more often).
    let jobs = sdsc_trace(2_000);
    for kind in [
        SchedulerKind::Easy,
        SchedulerKind::Ss { sf: 1.5 },
        SchedulerKind::Tss { sf: 2.0 },
    ] {
        h.bench(&format!("sdsc_2000_jobs/{kind}"), || {
            let res = Simulator::new(jobs.clone(), SDSC.procs, kind.build()).run();
            res.preemptions
        });
    }

    // Tracing overhead: NullSink (statically inlined away) vs JsonlSink
    // writing into an in-process buffer.
    let kind = SchedulerKind::Ss { sf: 2.0 };
    h.bench("sdsc_2000_jobs/ss2_nullsink", || {
        let res = Simulator::with_sink(jobs.clone(), SDSC.procs, kind.build(), NullSink).run();
        res.preemptions
    });
    h.bench("sdsc_2000_jobs/ss2_jsonlsink_buffer", || {
        let sink = JsonlSink::new(Vec::<u8>::new());
        let res = Simulator::with_sink(jobs.clone(), SDSC.procs, kind.build(), sink).run();
        res.preemptions
    });
}
