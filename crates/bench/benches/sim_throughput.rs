//! Simulator throughput: wall time to schedule a full CTC-scale trace
//! under each policy. This is the "can you actually use this simulator"
//! benchmark — a month of machine time should simulate in well under a
//! second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sps_core::experiment::SchedulerKind;
use sps_core::sim::Simulator;
use sps_workload::traces::{CTC, SDSC};
use sps_workload::{Job, SyntheticConfig};

fn trace(n: usize) -> Vec<Job> {
    SyntheticConfig::new(CTC, 42).with_jobs(n).generate()
}

fn sdsc_trace(n: usize) -> Vec<Job> {
    SyntheticConfig::new(SDSC, 42).with_jobs(n).generate()
}

fn policies() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Fcfs,
        SchedulerKind::Conservative,
        SchedulerKind::Easy,
        SchedulerKind::ImmediateService,
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Tss { sf: 2.0 },
    ]
}

fn bench_policies(c: &mut Criterion) {
    let jobs = trace(2_000);
    let mut group = c.benchmark_group("ctc_2000_jobs");
    group.sample_size(10);
    for kind in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, kind| {
            b.iter(|| {
                let res = Simulator::new(jobs.clone(), CTC.procs, kind.build()).run();
                std::hint::black_box(res.outcomes.len())
            })
        });
    }
    group.finish();
}

fn bench_small_machine(c: &mut Criterion) {
    // The 128-processor machine exercises the preemption paths far more
    // (its synthetic mix suspends an order of magnitude more often).
    let jobs = sdsc_trace(2_000);
    let mut group = c.benchmark_group("sdsc_2000_jobs");
    group.sample_size(10);
    for kind in [SchedulerKind::Easy, SchedulerKind::Ss { sf: 1.5 }, SchedulerKind::Tss { sf: 2.0 }]
    {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, kind| {
            b.iter(|| {
                let res = Simulator::new(jobs.clone(), SDSC.procs, kind.build()).run();
                std::hint::black_box(res.preemptions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_small_machine);
criterion_main!(benches);
