//! Hot paths of the backfilling machinery: building availability
//! profiles, anchor searches, and reservation chains — executed once per
//! scheduling decision by EASY and conservative backfilling.

use criterion::{criterion_group, criterion_main, Criterion};
use sps_cluster::Profile;
use sps_simcore::SimTime;

/// A profile shaped like a busy 430-proc machine: 40 running jobs with
/// staggered estimated releases.
fn busy_profile() -> Profile {
    let releases: Vec<(SimTime, u32)> =
        (0..40).map(|i| (SimTime::new(600 + i * 900), 8 + (i % 16) as u32)).collect();
    Profile::new(SimTime::new(0), 430, 14, &releases)
}

fn bench_profile_build(c: &mut Criterion) {
    let releases: Vec<(SimTime, u32)> =
        (0..40).map(|i| (SimTime::new(600 + i * 900), 8 + (i % 16) as u32)).collect();
    c.bench_function("profile_build_40_jobs", |b| {
        b.iter(|| std::hint::black_box(Profile::new(SimTime::new(0), 430, 14, &releases)))
    });
}

fn bench_anchor_search(c: &mut Criterion) {
    let p = busy_profile();
    c.bench_function("anchor_narrow_short", |b| {
        b.iter(|| std::hint::black_box(p.find_anchor(4, 600, SimTime::new(0))))
    });
    c.bench_function("anchor_wide_long", |b| {
        b.iter(|| std::hint::black_box(p.find_anchor(336, 28_800, SimTime::new(0))))
    });
}

fn bench_reservation_chain(c: &mut Criterion) {
    // Conservative backfilling anchors every queued job in turn: chain 30
    // reservations into one profile.
    c.bench_function("conservative_chain_30", |b| {
        b.iter(|| {
            let mut p = busy_profile();
            for i in 0..30u32 {
                let procs = 1 + (i * 7) % 64;
                let dur = 300 + (i as i64 * 1_717) % 20_000;
                let r = p.reserve_earliest(procs, dur, SimTime::new(0));
                std::hint::black_box(r);
            }
        })
    });
}

criterion_group!(benches, bench_profile_build, bench_anchor_search, bench_reservation_chain);
criterion_main!(benches);
