//! Hot paths of the backfilling machinery: building availability
//! profiles, anchor searches, and reservation chains — executed once per
//! scheduling decision by EASY and conservative backfilling.

use sps_bench::Harness;
use sps_cluster::Profile;
use sps_simcore::SimTime;

/// A profile shaped like a busy 430-proc machine: 40 running jobs with
/// staggered estimated releases.
fn busy_profile() -> Profile {
    let releases: Vec<(SimTime, u32)> = (0..40)
        .map(|i| (SimTime::new(600 + i * 900), 8 + (i % 16) as u32))
        .collect();
    Profile::new(SimTime::new(0), 430, 14, &releases)
}

fn main() {
    let h = Harness::new("backfill");

    let releases: Vec<(SimTime, u32)> = (0..40)
        .map(|i| (SimTime::new(600 + i * 900), 8 + (i % 16) as u32))
        .collect();
    h.bench("profile_build_40_jobs", || {
        Profile::new(SimTime::new(0), 430, 14, &releases)
    });

    let p = busy_profile();
    h.bench("anchor_narrow_short", || {
        p.find_anchor(4, 600, SimTime::new(0))
    });
    h.bench("anchor_wide_long", || {
        p.find_anchor(336, 28_800, SimTime::new(0))
    });

    // Conservative backfilling anchors every queued job in turn: chain 30
    // reservations into one profile.
    h.bench("conservative_chain_30", || {
        let mut p = busy_profile();
        for i in 0..30u32 {
            let procs = 1 + (i * 7) % 64;
            let dur = 300 + (i as i64 * 1_717) % 20_000;
            let r = p.reserve_earliest(procs, dur, SimTime::new(0));
            std::hint::black_box(r);
        }
    });
}
