//! Sweep-engine throughput: the declarative replicated-sweep harness
//! against the naive batch path it replaced.
//!
//! Both sides run the same scheduler × load × seed grid and must produce
//! bit-identical per-cell statistics; only the machinery differs.
//!
//! * **before** — what a batch looked like pre-sweep-engine: every run
//!   regenerates its own trace, events flow through the binary-heap
//!   queue, the simulator processes every idle tick (no quiescent
//!   elision), every decide runs the policies' exhaustive reference scan
//!   (no fast-path certifications), and every run is folded into the
//!   full result record of the old batch path — a cloned config plus
//!   three per-category reports next to the raw `SimResult` — all
//!   retained until the end, when the batch is folded into cells.
//! * **after** — [`run_sweep`]: traces shared through the
//!   [`TraceCache`](sps_workload::TraceCache), idle ticks elided for
//!   policies that certify quiescent decides as no-ops, fast no-op
//!   checks active inside the decides, and each run folded to a
//!   fixed-size [`RunSummary`] as soon as it finishes.
//!
//! Both sides run on one worker thread so the ratio measures the engine,
//! not the scheduler's parallelism. Peak RSS is read from `VmHWM` in
//! `/proc/self/status`; the *after* phase runs first so its high-water
//! mark is not polluted by the retained-results phase.
//!
//! Flags: `--smoke` runs a tiny grid and skips the report file; a full
//! run writes `BENCH_sweep.json` at the workspace root.

use std::time::Instant;

use sps_core::experiment::{ExperimentConfig, SchedulerKind};
use sps_core::sim::{SimResult, Simulator};
use sps_core::sweep::{run_sweep, CellStats, RunSummary, SweepSpec};
use sps_metrics::{CategoryReport, JobOutcome};
use sps_simcore::Watchdog;
use sps_workload::traces::SDSC;

/// Peak resident set size of this process so far, in kilobytes.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The paper-scale grid — the source paper's own sweep: the four
/// schedulers of its figures ({NS, SS, TSS, IS}) across five SF points
/// (SS and TSS carry the SF; NS and IS are its flat baselines), three
/// loads, five seed replications, 5000 jobs — 180 runs.
fn paper_grid() -> SweepSpec {
    let mut schedulers = vec![SchedulerKind::Easy, SchedulerKind::ImmediateService];
    for sf in [1.5, 2.0, 3.0, 5.0, 10.0] {
        schedulers.push(SchedulerKind::Ss { sf });
        schedulers.push(SchedulerKind::Tss { sf });
    }
    SweepSpec::new(SDSC)
        .with_schedulers(schedulers)
        .with_loads(vec![0.7, 0.85, 1.0])
        .with_jobs(5_000)
        .with_seed(42)
        .with_reps(5)
}

/// CI-sized grid: two schedulers, one load, two seeds, 400 jobs.
fn smoke_grid() -> SweepSpec {
    SweepSpec::new(SDSC)
        .with_schedulers(vec![SchedulerKind::Easy, SchedulerKind::Ss { sf: 2.0 }])
        .with_loads(vec![1.0])
        .with_jobs(400)
        .with_seed(42)
        .with_reps(2)
}

/// The old batch path's per-run record: cloned config, raw simulation
/// result, and the three eagerly-built per-category reports.
struct Retained {
    config: ExperimentConfig,
    sim: SimResult,
    #[allow(dead_code)]
    reports: [CategoryReport; 3],
}

/// The naive path: regenerate per run, simulate with idle-tick elision
/// off and reference decides on the heap-backed queue, build and retain
/// the old full result record for every run until the end, fold last.
fn run_before(spec: &SweepSpec) -> (Vec<CellStats>, u64) {
    let configs = spec.expand();
    let mut retained: Vec<Retained> = Vec::with_capacity(configs.len());
    let mut events = 0u64;
    for cfg in configs {
        let sim = Simulator::with_overhead_and_tick(
            cfg.trace(),
            cfg.system.procs,
            cfg.scheduler.build(),
            cfg.overhead,
            cfg.tick_period,
        )
        .with_faults(cfg.faults)
        .with_watchdog(Watchdog::generous())
        .with_heap_queue()
        .with_tick_elision(false)
        .with_reference_decides();
        let res = sim.run();
        events += res.kernel.events;
        let reports = [
            CategoryReport::from_outcomes(&res.outcomes),
            CategoryReport::from_filtered(&res.outcomes, JobOutcome::well_estimated),
            CategoryReport::from_filtered(&res.outcomes, |o| !o.well_estimated()),
        ];
        retained.push(Retained {
            config: cfg,
            sim: res,
            reports,
        });
    }
    let mut cells = Vec::with_capacity(spec.cells());
    let mut chunks = retained.chunks_exact(spec.reps);
    for &scheduler in &spec.schedulers {
        for &load in &spec.loads {
            let chunk = chunks.next().expect("cell-major expansion");
            let summaries: Vec<RunSummary> = chunk
                .iter()
                .map(|r| RunSummary::fold(&r.config, &r.sim))
                .collect();
            cells.push(CellStats::from_summaries(scheduler, load, &summaries, 0));
        }
    }
    (cells, events)
}

/// Convert unix days to a calendar date (Howard Hinnant's civil_from_days).
fn date_from_unix(secs: u64) -> String {
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let spec = if smoke { smoke_grid() } else { paper_grid() };
    eprintln!(
        "sweep_throughput: {} cells x {} reps = {} runs of {} jobs{}",
        spec.cells(),
        spec.reps,
        spec.runs(),
        spec.n_jobs,
        if smoke { " (smoke)" } else { "" },
    );

    // After first, so its VmHWM reading is its own.
    let t0 = Instant::now();
    let report = run_sweep(&spec, 1).expect("valid spec");
    let after_wall = t0.elapsed();
    let after_rss_kb = vm_hwm_kb();
    assert!(report.failures.is_empty(), "sweep runs must not fail");

    let t1 = Instant::now();
    let (before_cells, before_events) = run_before(&spec);
    let before_wall = t1.elapsed();
    let before_rss_kb = vm_hwm_kb();

    // The tentpole's correctness bar: identical per-cell statistics.
    assert_eq!(
        report.cells.len(),
        before_cells.len(),
        "cell counts must match"
    );
    for (a, b) in report.cells.iter().zip(&before_cells) {
        assert_eq!(a, b, "per-cell statistics must be bit-identical");
    }

    let speedup = before_wall.as_secs_f64() / after_wall.as_secs_f64();
    println!(
        "before: {:>8.1} ms wall, {:>8} kB peak RSS, {} events",
        before_wall.as_secs_f64() * 1e3,
        before_rss_kb,
        before_events,
    );
    println!(
        "after:  {:>8.1} ms wall, {:>8} kB peak RSS, {} traces generated ({} cache hits)",
        after_wall.as_secs_f64() * 1e3,
        after_rss_kb,
        report.unique_traces,
        report.trace_hits,
    );
    println!("speedup: {speedup:.2}x (identical cells: yes)");

    if !smoke {
        let date = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| date_from_unix(d.as_secs()))
            .unwrap_or_default();
        let json = format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"sweep_throughput (crates/bench/benches/sweep_throughput.rs)\",\n",
                "  \"date\": \"{date}\",\n",
                "  \"notes\": \"Before = per-run trace regeneration, binary-heap event queue, no idle-tick elision, exhaustive reference decides, full SimResult retention until the final fold. After = run_sweep: shared TraceCache, calendar event queue + quiescent tick elision, fast no-op decide certifications, per-run streaming fold to RunSummary. Both single-threaded; per-cell statistics asserted bit-identical. Peak RSS from /proc/self/status VmHWM (after phase runs first).\",\n",
                "  \"cases\": [\n",
                "    {{\n",
                "      \"case\": \"sdsc_paper_grid\",\n",
                "      \"workload\": \"SDSC, {{NS, IS, SS x 5 SF, TSS x 5 SF}} x 3 loads x 5 seeds, 5000 jobs (180 runs)\",\n",
                "      \"before\": {{\"wall_ms\": {bw:.1}, \"peak_rss_kb\": {br}, \"events\": {be}}},\n",
                "      \"after\":  {{\"wall_ms\": {aw:.1}, \"peak_rss_kb\": {ar}, \"unique_traces\": {ut}, \"trace_hits\": {th}}},\n",
                "      \"speedup\": {sp:.2},\n",
                "      \"identical_cells\": true\n",
                "    }}\n",
                "  ]\n",
                "}}\n",
            ),
            date = date,
            bw = before_wall.as_secs_f64() * 1e3,
            br = before_rss_kb,
            be = before_events,
            aw = after_wall.as_secs_f64() * 1e3,
            ar = after_rss_kb,
            ut = report.unique_traces,
            th = report.trace_hits,
            sp = speedup,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
}
