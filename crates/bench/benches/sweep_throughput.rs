//! Sweep-engine throughput: the declarative replicated-sweep harness
//! against the naive batch path it replaced.
//!
//! Both sides run the same scheduler × load × seed grid and must produce
//! bit-identical per-cell statistics; only the machinery differs.
//!
//! * **before** — what a batch looked like pre-sweep-engine: every run
//!   regenerates its own trace, events flow through the binary-heap
//!   queue, the simulator processes every idle tick (no quiescent
//!   elision), every decide runs the policies' exhaustive reference scan
//!   (no fast-path certifications), and every run is folded into the
//!   full result record of the old batch path — a cloned config plus
//!   three per-category reports next to the raw `SimResult` — all
//!   retained until the end, when the batch is folded into cells.
//! * **after** — [`run_sweep`]: traces shared through the
//!   [`TraceCache`](sps_workload::TraceCache), idle ticks elided for
//!   policies that certify quiescent decides as no-ops, fast no-op
//!   checks active inside the decides, and each run folded to a
//!   fixed-size [`RunSummary`] as soon as it finishes.
//!
//! Both sides run on one worker thread so the ratio measures the engine,
//! not the scheduler's parallelism. Peak RSS is read from `VmHWM` in
//! `/proc/self/status`; the *after* phase runs first so its high-water
//! mark is not polluted by the retained-results phase.
//!
//! Flags: `--smoke` runs a tiny grid and skips the report file; a full
//! run updates the `sdsc_paper_grid` case in `BENCH_sweep.json` at the
//! workspace root in place — other cases (e.g. the mega-sweep case) are
//! preserved, and a dated entry is appended to the case's `history`
//! array so the trajectory across PRs survives. `--guard` additionally
//! gates on the measured speedup staying within 50% of the best prior
//! recorded speedup (full runs) or simply ≥ 1.0 (smoke runs, whose tiny
//! grid is not comparable to the recorded full-grid numbers).

use std::time::Instant;

use sps_bench::history;
use sps_core::experiment::{ExperimentConfig, SchedulerKind};
use sps_core::sim::{SimResult, Simulator};
use sps_core::sweep::{run_sweep, CellStats, RunSummary, SweepSpec};
use sps_metrics::{CategoryReport, JobOutcome};
use sps_simcore::Watchdog;
use sps_trace::Json;
use sps_workload::traces::SDSC;

/// Peak resident set size of this process so far, in kilobytes.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The paper-scale grid — the source paper's own sweep: the four
/// schedulers of its figures ({NS, SS, TSS, IS}) across five SF points
/// (SS and TSS carry the SF; NS and IS are its flat baselines), three
/// loads, five seed replications, 5000 jobs — 180 runs.
fn paper_grid() -> SweepSpec {
    let mut schedulers = vec![SchedulerKind::Easy, SchedulerKind::ImmediateService];
    for sf in [1.5, 2.0, 3.0, 5.0, 10.0] {
        schedulers.push(SchedulerKind::Ss { sf });
        schedulers.push(SchedulerKind::Tss { sf });
    }
    SweepSpec::new(SDSC)
        .with_schedulers(schedulers)
        .with_loads(vec![0.7, 0.85, 1.0])
        .with_jobs(5_000)
        .with_seed(42)
        .with_reps(5)
}

/// CI-sized grid: two schedulers, one load, two seeds, 400 jobs.
fn smoke_grid() -> SweepSpec {
    SweepSpec::new(SDSC)
        .with_schedulers(vec![SchedulerKind::Easy, SchedulerKind::Ss { sf: 2.0 }])
        .with_loads(vec![1.0])
        .with_jobs(400)
        .with_seed(42)
        .with_reps(2)
}

/// The old batch path's per-run record: cloned config, raw simulation
/// result, and the three eagerly-built per-category reports.
struct Retained {
    config: ExperimentConfig,
    sim: SimResult,
    #[allow(dead_code)]
    reports: [CategoryReport; 3],
}

/// The naive path: regenerate per run, simulate with idle-tick elision
/// off and reference decides on the heap-backed queue, build and retain
/// the old full result record for every run until the end, fold last.
fn run_before(spec: &SweepSpec) -> (Vec<CellStats>, u64) {
    let configs = spec.expand();
    let mut retained: Vec<Retained> = Vec::with_capacity(configs.len());
    let mut events = 0u64;
    for cfg in configs {
        let sim = Simulator::with_overhead_and_tick(
            cfg.trace(),
            cfg.system.procs,
            cfg.scheduler.build(),
            cfg.overhead,
            cfg.tick_period,
        )
        .with_faults(cfg.faults)
        .with_watchdog(Watchdog::generous())
        .with_heap_queue()
        .with_tick_elision(false)
        .with_reference_decides();
        let res = sim.run();
        events += res.kernel.events;
        let reports = [
            CategoryReport::from_outcomes(&res.outcomes),
            CategoryReport::from_filtered(&res.outcomes, JobOutcome::well_estimated),
            CategoryReport::from_filtered(&res.outcomes, |o| !o.well_estimated()),
        ];
        retained.push(Retained {
            config: cfg,
            sim: res,
            reports,
        });
    }
    let mut cells = Vec::with_capacity(spec.cells());
    let mut chunks = retained.chunks_exact(spec.reps);
    for &scheduler in &spec.schedulers {
        for &load in &spec.loads {
            let chunk = chunks.next().expect("cell-major expansion");
            let summaries: Vec<RunSummary> = chunk
                .iter()
                .map(|r| RunSummary::fold(&r.config, &r.sim))
                .collect();
            cells.push(CellStats::from_summaries(scheduler, load, &summaries, 0));
        }
    }
    (cells, events)
}

/// Path of the sweep bench report at the workspace root.
const REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");

/// Fraction of the best prior speedup a full guarded run must reach.
const GUARD_FLOOR: f64 = 0.5;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let guard = std::env::args().any(|a| a == "--guard");
    let spec = if smoke { smoke_grid() } else { paper_grid() };
    eprintln!(
        "sweep_throughput: {} cells x {} reps = {} runs of {} jobs{}",
        spec.cells(),
        spec.reps,
        spec.runs(),
        spec.n_jobs,
        if smoke { " (smoke)" } else { "" },
    );

    // After first, so its VmHWM reading is its own.
    let t0 = Instant::now();
    let report = run_sweep(&spec, 1).expect("valid spec");
    let after_wall = t0.elapsed();
    let after_rss_kb = vm_hwm_kb();
    assert!(report.failures.is_empty(), "sweep runs must not fail");

    let t1 = Instant::now();
    let (before_cells, before_events) = run_before(&spec);
    let before_wall = t1.elapsed();
    let before_rss_kb = vm_hwm_kb();

    // The tentpole's correctness bar: identical per-cell statistics.
    assert_eq!(
        report.cells.len(),
        before_cells.len(),
        "cell counts must match"
    );
    for (a, b) in report.cells.iter().zip(&before_cells) {
        assert_eq!(a, b, "per-cell statistics must be bit-identical");
    }

    let speedup = before_wall.as_secs_f64() / after_wall.as_secs_f64();
    println!(
        "before: {:>8.1} ms wall, {:>8} kB peak RSS, {} events",
        before_wall.as_secs_f64() * 1e3,
        before_rss_kb,
        before_events,
    );
    println!(
        "after:  {:>8.1} ms wall, {:>8} kB peak RSS, {} traces generated ({} cache hits)",
        after_wall.as_secs_f64() * 1e3,
        after_rss_kb,
        report.unique_traces,
        report.trace_hits,
    );
    println!("speedup: {speedup:.2}x (identical cells: yes)");

    if smoke {
        if guard {
            // A smoke grid is not comparable to the recorded full-grid
            // numbers, so the gate only demands "not slower than naive".
            if speedup < 1.0 {
                eprintln!("guard FAIL: smoke speedup {speedup:.2}x is below 1.0x");
                std::process::exit(1);
            }
            println!("guard OK: smoke speedup {speedup:.2}x >= 1.0x");
        }
        return;
    }

    let date = history::today();
    let mut doc = history::load(REPORT).unwrap_or_else(|| {
        history::obj(vec![
            (
                "benchmark",
                Json::Str("sweep_throughput (crates/bench/benches/sweep_throughput.rs)".into()),
            ),
            ("cases", Json::Arr(Vec::new())),
        ])
    });
    // Baseline is read before this run's entry lands in the history.
    let baseline = history::best_metric(&doc, "sdsc_paper_grid", "speedup");
    let case = history::obj(vec![
        ("case", Json::Str("sdsc_paper_grid".into())),
        (
            "workload",
            Json::Str(
                "SDSC, {NS, IS, SS x 5 SF, TSS x 5 SF} x 3 loads x 5 seeds, 5000 jobs (180 runs)"
                    .into(),
            ),
        ),
        ("date", Json::Str(date.clone())),
        (
            "before",
            history::obj(vec![
                ("wall_ms", Json::Num(before_wall.as_secs_f64() * 1e3)),
                ("peak_rss_kb", Json::Int(before_rss_kb as i64)),
                ("events", Json::Int(before_events as i64)),
            ]),
        ),
        (
            "after",
            history::obj(vec![
                ("wall_ms", Json::Num(after_wall.as_secs_f64() * 1e3)),
                ("peak_rss_kb", Json::Int(after_rss_kb as i64)),
                ("unique_traces", Json::Int(report.unique_traces as i64)),
                ("trace_hits", Json::Int(report.trace_hits as i64)),
            ]),
        ),
        ("speedup", Json::Num(speedup)),
        ("identical_cells", Json::Bool(true)),
    ]);
    history::upsert_case(&mut doc, "sdsc_paper_grid", case);
    history::append_entry(
        &mut doc,
        "sdsc_paper_grid",
        history::obj(vec![
            ("date", Json::Str(date)),
            ("speedup", Json::Num(speedup)),
            ("wall_ms", Json::Num(after_wall.as_secs_f64() * 1e3)),
            ("peak_rss_kb", Json::Int(after_rss_kb as i64)),
        ]),
    );
    match history::store(REPORT, &doc) {
        Ok(()) => eprintln!("updated {REPORT} (dated history entry appended)"),
        Err(e) => eprintln!("warning: cannot write {REPORT}: {e}"),
    }
    if guard {
        match baseline {
            Some(base) => {
                let floor = base * GUARD_FLOOR;
                if speedup < floor {
                    eprintln!(
                        "guard FAIL: speedup {speedup:.2}x is below {floor:.2}x ({}% of the best prior {base:.2}x)",
                        (GUARD_FLOOR * 100.0) as u32
                    );
                    std::process::exit(1);
                }
                println!(
                    "guard OK: speedup {speedup:.2}x within {}% of the best prior {base:.2}x",
                    (GUARD_FLOOR * 100.0) as u32
                );
            }
            None => println!("guard OK: no prior speedup recorded; this run seeds the history"),
        }
    }
}
