//! Decide-throughput microbench for the scheduling kernel.
//!
//! Drives the high-load SS/TSS sweeps (the workloads where per-decide
//! cost grows with active-job count) and reports, per case:
//!
//! * kernel events/sec — total engine events over the wall time of the
//!   whole run (the headline number for the incremental-kernel work),
//! * per-`decide()` latency percentiles, measured by wrapping the policy
//!   in a timing decorator so only scheduler decision time is counted.
//!
//! Each case also prints a machine-readable `JSON {...}` line; the
//! before/after numbers live in `BENCH_kernel.json` at the repo root.
//!
//! Flags: `--smoke` runs one sample per case (CI keeps the path alive),
//! `--quick` three; a bare argument is a substring filter. `--guard`
//! compares each case's events/sec against the **best** entry recorded
//! in `BENCH_kernel.json` — the max over the `after` block and the
//! case's dated `history` array — and exits non-zero below 50% of that
//! baseline: a coarse CI tripwire for "telemetry (or anything else)
//! made the default-disabled hot path slow", deliberately loose enough
//! to survive shared-runner noise. Every guarded run also *appends* a
//! dated entry to each measured case's `history` (regressions included,
//! so the trajectory is honest; the max-baseline rule means a recorded
//! regression never ratchets the gate down).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use sps_bench::history;
use sps_core::experiment::SchedulerKind;
use sps_core::policy::{Action, DecideCtx, Policy};
use sps_core::sim::{SimState, Simulator};
use sps_metrics::JobOutcome;
use sps_trace::{MemorySink, TraceRecord};
use sps_workload::traces::{CTC, SDSC};
use sps_workload::{Job, SyntheticConfig, SystemPreset};

/// Forwarding decorator that records wall nanoseconds per `decide`.
///
/// Deliberately does NOT forward `quiescent_noop`, so the decorated
/// policy keeps the default `false` and the simulator never elides idle
/// ticks in timed runs: every decide the wrapped policy would have been
/// asked for is still timed, keeping these numbers comparable across
/// kernels with and without elision.
struct Timed {
    inner: Box<dyn Policy>,
    ns: Rc<RefCell<Vec<u64>>>,
}

impl Policy for Timed {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn needs_tick(&self) -> bool {
        self.inner.needs_tick()
    }

    fn decide(&mut self, state: &SimState, ctx: &DecideCtx<'_>, actions: &mut Vec<Action>) {
        let t0 = Instant::now();
        self.inner.decide(state, ctx, actions);
        self.ns.borrow_mut().push(t0.elapsed().as_nanos() as u64);
    }

    fn on_completion(&mut self, outcome: &JobOutcome) {
        self.inner.on_completion(outcome);
    }
}

struct Case {
    label: &'static str,
    system: SystemPreset,
    spec: &'static str,
    jobs: usize,
    load: f64,
}

/// The high-load sweep points: the preemption-heavy 128-proc SDSC mix
/// under SS/TSS (many concurrent suspended/draining jobs), the NS
/// backfilling baseline for contrast, and one CTC-scale SS case.
fn cases() -> Vec<Case> {
    let c = |label, system, spec, jobs, load| Case {
        label,
        system,
        spec,
        jobs,
        load,
    };
    vec![
        c("sdsc_ss2_hiload", SDSC, "ss:2", 3_000, 1.4),
        c("sdsc_tss2_hiload", SDSC, "tss:2", 3_000, 1.4),
        c("sdsc_ns_hiload", SDSC, "ns", 3_000, 1.4),
        c("ctc_ss2_hiload", CTC, "ss:2", 2_000, 1.3),
    ]
}

fn trace(case: &Case) -> Vec<Job> {
    SyntheticConfig::new(case.system, 42)
        .with_jobs(case.jobs)
        .with_load_factor(case.load)
        .generate()
}

/// Exact engine event/batch counts for one case, from the traced
/// `EngineStats` record (behavior is deterministic, so one traced run
/// pins the counts for every timed run of the same case).
fn engine_counts(case: &Case, kind: SchedulerKind, jobs: &[Job]) -> (u64, u64) {
    let mut sink = MemorySink::new();
    Simulator::with_sink(jobs.to_vec(), case.system.procs, kind.build(), &mut sink).run();
    for r in sink.records() {
        if let TraceRecord::EngineStats {
            batches, events, ..
        } = r
        {
            return (*events, *batches);
        }
    }
    panic!("traced run emits EngineStats");
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// Path of the kernel bench report at the workspace root.
const REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");

/// The parsed `BENCH_kernel.json`; the guard baseline per case is the
/// best events/sec it records (see [`history::best_metric`]).
fn load_report() -> sps_trace::Json {
    history::load(REPORT).unwrap_or_else(|| panic!("--guard needs a parseable {REPORT}"))
}

/// Fraction of the recorded baseline a case must reach under `--guard`.
/// Deliberately generous: the guard exists to catch a structural
/// regression (an always-on telemetry branch, a lost fast path), not to
/// police machine-to-machine variance.
const GUARD_FLOOR: f64 = 0.5;

fn main() {
    let mut samples = 7usize;
    let mut filter = None;
    let mut guard = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => samples = 1,
            "--quick" => samples = 3,
            "--guard" => guard = true,
            "--bench" | "--test" => {}
            s if s.starts_with("--") => {}
            s => filter = Some(s.to_string()),
        }
    }
    let mut report = guard.then(load_report);
    let mut violations: Vec<String> = Vec::new();
    let date = history::today();

    for case in cases() {
        let full = format!("decide_throughput/{}", case.label);
        if let Some(f) = &filter {
            if !full.contains(f.as_str()) {
                continue;
            }
        }
        let kind: SchedulerKind = case.spec.parse().expect("bench spec parses");
        let jobs = trace(&case);
        let (events, decides) = engine_counts(&case, kind, &jobs);

        let ns = Rc::new(RefCell::new(Vec::new()));
        let mut walls = Vec::with_capacity(samples);
        for _ in 0..samples {
            let policy = Box::new(Timed {
                inner: kind.build(),
                ns: Rc::clone(&ns),
            });
            let sim = Simulator::new(jobs.clone(), case.system.procs, policy);
            let t0 = Instant::now();
            let res = sim.run();
            walls.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(res.preemptions);
        }
        walls.sort_by(f64::total_cmp);
        let wall = walls[walls.len() / 2];
        let events_per_sec = events as f64 / wall;

        let mut decide_ns = ns.borrow().clone();
        decide_ns.sort_unstable();
        let (p50, p90, p99) = (
            percentile(&decide_ns, 0.50),
            percentile(&decide_ns, 0.90),
            percentile(&decide_ns, 0.99),
        );
        let max = decide_ns.last().copied().unwrap_or(0) as f64 / 1e3;

        println!(
            "{full:<44} {:>9.0} events/s   wall {:>8.3} ms   decide µs p50 {p50:.1} p90 {p90:.1} p99 {p99:.1} max {max:.1}",
            events_per_sec,
            wall * 1e3,
        );
        println!(
            "JSON {{\"case\":\"{}\",\"events\":{events},\"decides\":{decides},\"wall_ms\":{:.3},\"events_per_sec\":{:.0},\"decide_us\":{{\"p50\":{p50:.2},\"p90\":{p90:.2},\"p99\":{p99:.2},\"max\":{max:.1}}}}}",
            case.label,
            wall * 1e3,
            events_per_sec,
        );
        if let Some(doc) = &mut report {
            match history::best_metric(doc, case.label, "events_per_sec") {
                Some(base) => {
                    let floor = base * GUARD_FLOOR;
                    let pct = events_per_sec / base * 100.0;
                    println!(
                        "guard {:<30} {:>6.1}% of best prior ({:.0} vs {:.0} events/s, floor {:.0})",
                        case.label, pct, events_per_sec, base, floor
                    );
                    if events_per_sec < floor {
                        violations.push(format!(
                            "{}: {:.0} events/s is below {:.0} ({}% of the best prior {:.0})",
                            case.label,
                            events_per_sec,
                            floor,
                            (GUARD_FLOOR * 100.0) as u32,
                            base
                        ));
                    }
                }
                None => {
                    violations.push(format!("{}: no baseline in BENCH_kernel.json", case.label))
                }
            }
            let entry = history::obj(vec![
                ("date", sps_trace::Json::Str(date.clone())),
                ("events_per_sec", sps_trace::Json::Num(events_per_sec)),
                ("wall_ms", sps_trace::Json::Num(wall * 1e3)),
                (
                    "decide_us",
                    history::obj(vec![
                        ("p50", sps_trace::Json::Num(p50)),
                        ("p90", sps_trace::Json::Num(p90)),
                        ("p99", sps_trace::Json::Num(p99)),
                    ]),
                ),
            ]);
            if !history::append_entry(doc, case.label, entry) {
                eprintln!(
                    "warning: {} has no case object in BENCH_kernel.json; not recorded",
                    case.label
                );
            }
        }
    }
    if let Some(doc) = &report {
        // Record the run — regressions too — before the gate can exit.
        match history::store(REPORT, doc) {
            Ok(()) => eprintln!("appended dated history entries to {REPORT}"),
            Err(e) => eprintln!("warning: cannot write {REPORT}: {e}"),
        }
        if violations.is_empty() {
            println!(
                "guard OK: every case within {}% of its best prior entry",
                (GUARD_FLOOR * 100.0) as u32
            );
        } else {
            for v in &violations {
                eprintln!("guard FAIL: {v}");
            }
            std::process::exit(1);
        }
    }
}
