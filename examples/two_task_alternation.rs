//! The paper's Section IV-A analysis, live: two identical tasks, one
//! machine, and a suspension factor that controls how often they trade
//! places (Figs. 4-6).
//!
//! ```text
//! cargo run --release --example two_task_alternation [length_secs]
//! ```

use selective_preemption::core::theory::{
    max_suspensions, min_sf_for_at_most, two_task_alternation, Task,
};

fn main() {
    let length: i64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_600);

    println!("two equal tasks of {length} s, preemption routine every 60 s\n");
    for sf in [1.0, 1.1, 1.2, 2f64.sqrt(), 1.6, 2.0, 5.0] {
        let trace = two_task_alternation(length, sf, 60);
        let bound = match max_suspensions(sf) {
            Some(n) => format!("analytic bound {n}"),
            None => "bounded only by routine granularity".to_string(),
        };
        println!(
            "SF = {sf:<6.3} suspensions: {:<4} ({bound}); makespan {:.0} s",
            trace.suspensions, trace.last_completion
        );
        let cols = 72.0 / trace.last_completion;
        let mut bar = String::new();
        for seg in &trace.segments {
            let w = (((seg.end - seg.start) * cols).round() as usize).max(1);
            bar.extend(std::iter::repeat_n(
                if seg.task == Task::T1 { '█' } else { '░' },
                w,
            ));
        }
        println!("  |{bar}|");
    }

    println!("\nlowest SF allowing at most n suspensions (s = 2^(1/(n+1))):");
    for n in 0..6 {
        println!("  n = {n}: SF = {:.4}", min_sf_for_at_most(n));
    }
    println!(
        "\nThe paper's rule of thumb follows: SF = 2 never thrashes equal jobs,\n\
         SF = sqrt(2) allows one swap, and factors below that trade more\n\
         suspensions for faster service of the newly arrived task."
    );
}
