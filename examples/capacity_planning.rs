//! Capacity planning: how far can the machine be pushed before response
//! times collapse, and does preemption move that point?
//!
//! Section VI's question, posed the way a center director would: as
//! demand grows (arrival times compress), track utilization and the
//! slowdown of short-narrow jobs — the interactive traffic users feel —
//! under the non-preemptive scheduler and under TSS.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use selective_preemption::core::experiment::{ExperimentConfig, SchedulerKind};
use selective_preemption::core::runner::BatchRunner;
use selective_preemption::workload::traces::SDSC;
use selective_preemption::workload::CoarseCategory;

fn main() {
    let loads = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0];
    let schemes = [SchedulerKind::Easy, SchedulerKind::Tss { sf: 2.0 }];

    let mut configs = Vec::new();
    for &s in &schemes {
        for &lf in &loads {
            configs.push(ExperimentConfig::new(SDSC, s).with_load_factor(lf));
        }
    }
    let results = BatchRunner::new(configs).run();
    let (ns, tss) = results.split_at(loads.len());

    println!(
        "demand growth study, {}-processor machine ({})\n",
        SDSC.procs, SDSC.name
    );
    println!(
        "{:<8}{:>12}{:>12}{:>16}{:>16}",
        "load", "NS util %", "TSS util %", "NS SN slowdown", "TSS SN slowdown"
    );
    let sn = CoarseCategory::ShortNarrow;
    for (i, lf) in loads.iter().enumerate() {
        println!(
            "{:<8.1}{:>12.1}{:>12.1}{:>16.1}{:>16.1}",
            lf,
            ns[i].utilization_pct(),
            tss[i].utilization_pct(),
            ns[i].report.coarse(sn).mean_slowdown,
            tss[i].report.coarse(sn).mean_slowdown,
        );
    }

    // Declare saturation where utilization stops growing (< 1 point gain
    // per load step).
    let saturation = |runs: &[selective_preemption::core::experiment::RunResult]| {
        for w in 1..runs.len() {
            if runs[w].utilization_pct() - runs[w - 1].utilization_pct() < 1.0 {
                return loads[w];
            }
        }
        *loads.last().expect("non-empty sweep")
    };
    println!(
        "\nsaturation onset: NS at load factor ~{:.1}, TSS at ~{:.1}",
        saturation(ns),
        saturation(tss)
    );
    println!(
        "short-narrow jobs stay responsive under TSS well past the point\n\
         where the non-preemptive scheduler has pushed them to {:.0}x slowdowns.",
        ns.last()
            .expect("non-empty sweep")
            .report
            .coarse(sn)
            .mean_slowdown
    );
}
