//! Quickstart: simulate a small workload under non-preemptive EASY
//! backfilling (the paper's NS baseline) and under Selective Suspension,
//! and compare what happens to short jobs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use selective_preemption::core::experiment::{ExperimentConfig, SchedulerKind};
use selective_preemption::workload::traces::SDSC;
use selective_preemption::workload::{Category, RuntimeClass, WidthClass};

fn main() {
    // A 1000-job synthetic trace calibrated to the SDSC SP2's published
    // job mix. The same seed gives both schedulers the same jobs.
    let ns = ExperimentConfig::new(SDSC, SchedulerKind::Easy)
        .with_jobs(1_000)
        .run();
    let ss = ExperimentConfig::new(SDSC, SchedulerKind::Ss { sf: 2.0 })
        .with_jobs(1_000)
        .run();

    println!("machine: {} processors ({})", SDSC.procs, SDSC.name);
    println!("jobs:    {}\n", ns.report.overall.count);

    println!(
        "{:<22} {:>14} {:>14}",
        "metric",
        ns.sim.policy.as_str(),
        ss.sim.policy.as_str()
    );
    let row = |name: &str, a: f64, b: f64| {
        println!("{name:<22} {a:>14.2} {b:>14.2}");
    };
    row(
        "overall slowdown",
        ns.report.overall.mean_slowdown,
        ss.report.overall.mean_slowdown,
    );
    row(
        "overall turnaround (s)",
        ns.report.overall.mean_turnaround,
        ss.report.overall.mean_turnaround,
    );

    // The paper's headline category: Very Short & Very Wide jobs suffer
    // most under pure space sharing and gain most from preemption.
    let vs_vw = Category {
        runtime: RuntimeClass::VeryShort,
        width: WidthClass::VeryWide,
    };
    row(
        "VS-VW slowdown",
        ns.report.category(vs_vw).mean_slowdown,
        ss.report.category(vs_vw).mean_slowdown,
    );
    // The price: very long jobs are suspended occasionally.
    let vl_n = Category {
        runtime: RuntimeClass::VeryLong,
        width: WidthClass::Narrow,
    };
    row(
        "VL-N slowdown",
        ns.report.category(vl_n).mean_slowdown,
        ss.report.category(vl_n).mean_slowdown,
    );
    row(
        "utilization (%)",
        ns.utilization_pct(),
        ss.utilization_pct(),
    );
    println!(
        "\nselective suspension performed {} preemptions",
        ss.sim.preemptions
    );
}
