//! A supercomputer-center "what if" study: should the center enable
//! suspension-based preemption?
//!
//! This is the workload the paper's introduction motivates: a production
//! machine (CTC's 430-processor SP2) running a mix of debug jobs, small
//! experiments, and multi-day production runs, with the usual sloppy
//! wall-clock estimates. We compare the center's current scheduler (EASY
//! backfilling) against Tunable Selective Suspension with realistic
//! suspension overheads, and print the per-category report an operations
//! team would want to see.
//!
//! ```text
//! cargo run --release --example supercomputer_center
//! ```

use selective_preemption::core::experiment::{ExperimentConfig, SchedulerKind};
use selective_preemption::core::overhead::OverheadModel;
use selective_preemption::core::runner::BatchRunner;
use selective_preemption::metrics::table::render_comparison;
use selective_preemption::workload::traces::CTC;
use selective_preemption::workload::EstimateModel;

fn main() {
    // Users overestimate: about half the jobs request more than twice
    // their real run time (Section V's model), and suspending a job costs
    // real disk time (2 MB/s per processor, Section V-A).
    let base = |s: SchedulerKind| {
        ExperimentConfig::new(CTC, s)
            .with_estimates(EstimateModel::paper_mixture())
            .with_overhead(OverheadModel::paper())
    };

    let results = BatchRunner::new(vec![
        base(SchedulerKind::Easy),
        base(SchedulerKind::Tss { sf: 2.0 }),
        base(SchedulerKind::ImmediateService),
    ])
    .run();

    let grids: Vec<(&str, [f64; 16])> = results
        .iter()
        .map(|r| {
            let name: &str = match r.config.scheduler {
                SchedulerKind::Easy => "today (NS)",
                SchedulerKind::Tss { .. } => "TSS (SF=2)",
                _ => "IS",
            };
            (name, r.report.mean_slowdown_grid())
        })
        .collect();
    println!(
        "{}",
        render_comparison(
            "Average bounded slowdown per job category, CTC-like machine,\n\
             inaccurate estimates + suspension overhead",
            &grids
        )
    );

    println!("operations summary:");
    for r in &results {
        println!(
            "  {:<12} overall slowdown {:>6.2}, mean turnaround {:>7.0} s, \
             utilization {:>5.1}%, preemptions {:>5}, worst slowdown {:>8.1}",
            r.config.scheduler.label(),
            r.report.overall.mean_slowdown,
            r.report.overall.mean_turnaround,
            r.utilization_pct(),
            r.sim.preemptions,
            r.report.overall.worst_slowdown,
        );
    }

    let ns = &results[0];
    let tss = &results[1];
    let gain =
        ns.report.overall.mean_slowdown / tss.report.overall.mean_slowdown.max(f64::MIN_POSITIVE);
    println!(
        "\nverdict: enabling tunable selective suspension cuts the average\n\
         slowdown by {gain:.1}x on this workload while keeping utilization within\n\
         {:.1} points of the non-preemptive scheduler.",
        (ns.utilization_pct() - tss.utilization_pct()).abs()
    );
}
