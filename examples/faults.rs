//! How the schedulers degrade as processors start failing: a seeded MTBF
//! sweep comparing NS (EASY), SS, and TSS on the same trace, with goodput,
//! lost work, and stranded time per recovery policy, then the preemption
//! continuum — in-place suspend vs checkpoint-restart vs migration — on
//! the same failure schedule.
//!
//! A processor failure kills the job running on it (its memory image is
//! gone) and the job restarts from scratch; a *suspended* job whose
//! reserved processor died is handled by the recovery policy — wait for
//! the repair, resubmit from scratch, or remap onto other processors.
//! With `PreemptionMode::Checkpoint` the kill instead rolls back to the
//! last periodic image, and `PreemptionMode::Migrate` additionally lets
//! the restart land on any free set.
//!
//! ```text
//! cargo run --release --example faults
//! ```

use selective_preemption::prelude::*;
use selective_preemption::workload::traces::SDSC;

const JOBS: usize = 400;
const SEED: u64 = 7;
const MTTR: i64 = 3_600;

fn run(kind: SchedulerKind, mtbf: Option<i64>, recovery: RecoveryPolicy) -> RunResult {
    let mut cfg = ExperimentConfig::new(SDSC, kind)
        .with_jobs(JOBS)
        .with_seed(SEED)
        .with_load_factor(1.2);
    if let Some(mtbf) = mtbf {
        cfg = cfg.with_faults(FaultModel::proc_faults(mtbf, MTTR, 13).with_recovery(recovery));
    }
    cfg.run()
}

fn main() {
    let schedulers = [
        SchedulerKind::Easy,
        SchedulerKind::Ss { sf: 2.0 },
        SchedulerKind::Tss { sf: 2.0 },
    ];
    println!(
        "{}: {JOBS} jobs, seed {SEED}, per-proc exponential failures, MTTR {MTTR} s\n",
        SDSC.name
    );
    println!(
        "{:>12} {:>10}  {:>9} {:>7} {:>12} {:>9} {:>9} {:>10}",
        "mtbf (s)",
        "scheduler",
        "failures",
        "kills",
        "lost proc-s",
        "goodput",
        "turnar.",
        "slowdown"
    );
    for mtbf in [None, Some(20_000_000), Some(5_000_000), Some(2_000_000)] {
        for kind in schedulers {
            let r = run(kind, mtbf, RecoveryPolicy::WaitForRepair);
            assert!(!r.sim.status.is_aborted(), "{kind:?} must finish the trace");
            let f = r.sim.faults;
            println!(
                "{:>12} {:>10}  {:>9} {:>7} {:>12} {:>8.1}% {:>8.0}s {:>10.2}",
                mtbf.map_or("off".into(), |m| m.to_string()),
                r.config.scheduler.to_string(),
                f.proc_failures,
                f.jobs_killed + f.job_crashes,
                f.lost_work,
                goodput(&r.sim.outcomes, SDSC.procs, f.downtime) * 100.0,
                r.report.overall.mean_turnaround,
                r.report.overall.mean_slowdown,
            );
        }
    }

    // The recovery policies only differ when a failure lands on a
    // *suspended* job's reserved processors, so compare them where the
    // preemptive schedulers strand work.
    println!("\nrecovery policies under ss:2.0 at MTBF 5,000,000 s:");
    println!(
        "{:>12} {:>9} {:>12} {:>11} {:>9}",
        "recovery", "kills", "stranded (s)", "turnar. (s)", "slowdown"
    );
    for recovery in RecoveryPolicy::ALL {
        let r = run(SchedulerKind::Ss { sf: 2.0 }, Some(5_000_000), recovery);
        println!(
            "{:>12} {:>9} {:>12} {:>11.0} {:>9.2}",
            recovery.to_string(),
            r.sim.faults.jobs_killed + r.sim.faults.job_crashes,
            r.sim.faults.stranded_secs,
            r.report.overall.mean_turnaround,
            r.report.overall.mean_slowdown,
        );
    }

    // The continuum: same scheduler, same failure schedule (MTBF 1M s is
    // dense enough for kills to dominate), three ways of holding state.
    println!("\npreemption modes under ss:2.0 at MTBF 1,000,000 s (resubmit):");
    println!(
        "{:>12} {:>7} {:>12} {:>11} {:>10} {:>9} {:>9}",
        "mode", "kills", "lost proc-s", "ckpt proc-s", "migrations", "goodput", "slowdown"
    );
    for mode in PreemptionMode::ALL {
        let r = ExperimentConfig::new(SDSC, SchedulerKind::Ss { sf: 2.0 })
            .with_jobs(JOBS)
            .with_seed(SEED)
            .with_load_factor(1.2)
            .with_faults(
                FaultModel::proc_faults(1_000_000, MTTR, 13)
                    .with_recovery(RecoveryPolicy::Resubmit),
            )
            .with_preemption(mode)
            .with_checkpoint(CheckpointModel::paper().with_interval(1_800))
            .run();
        let f = r.sim.faults;
        println!(
            "{:>12} {:>7} {:>12} {:>11} {:>10} {:>8.1}% {:>9.2}",
            mode.to_string(),
            f.jobs_killed + f.job_crashes,
            f.lost_work,
            f.ckpt_overhead,
            f.migrations,
            goodput(&r.sim.outcomes, SDSC.procs, f.downtime) * 100.0,
            r.report.overall.mean_slowdown,
        );
    }
}
