//! Telemetry walkthrough: attach a metric registry and the online health
//! detectors to a run, then inspect what they saw — counters, latency
//! histograms, Prometheus text, and detector findings.
//!
//! ```text
//! cargo run --release --example telemetry_report
//! ```

use selective_preemption::prelude::*;
use selective_preemption::workload::traces::SDSC;

fn main() {
    // An overloaded trace under Immediate Service: preemption-happy
    // enough that the detectors have something to say.
    let cfg = ExperimentConfig::new(SDSC, SchedulerKind::ImmediateService)
        .with_jobs(800)
        .with_seed(9)
        .with_load_factor(1.1);

    let mut tel = Telemetry::new();
    let result = cfg.runner().telemetry(&mut tel).run();

    println!(
        "{}: {} jobs, mean slowdown {:.2}, {} preemptions\n",
        result.sim.policy,
        result.report.overall.count,
        result.report.overall.mean_slowdown,
        result.sim.preemptions,
    );

    // 1. Typed registry reads: counters and histograms by handle.
    let reg = tel.registry();
    let m = tel.metrics();
    println!("decides:    {}", reg.counter(m.decides));
    println!("suspends:   {}", reg.counter(m.suspends));
    println!("resumes:    {}", reg.counter(m.resumes));
    if let Some(p99) = reg.hist_quantile(m.decide_latency_ns, 0.99) {
        println!("decide p99: {:.0} ns", p99);
    }
    println!();

    // 2. The decide-latency histogram, rendered for a terminal.
    println!("{}", reg.render_hist(m.decide_latency_ns, "ns"));

    // 3. Health findings: what the online detectors flagged, and when.
    println!("{}", tel.health_report().render());

    // 4. Prometheus exposition (first few lines) — the same registry,
    //    ready for scraping or diffing between runs.
    for line in tel.render_prom().lines().take(8) {
        println!("{line}");
    }
    println!("...");
}
