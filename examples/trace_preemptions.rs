//! Trace every preemption a Selective Suspension run makes and print the
//! victims with both expansion factors — the paper's suspension criterion
//! (`xfactor(suspender) ≥ SF × xfactor(victim)`) made visible per event.
//!
//! ```text
//! cargo run --release --example trace_preemptions
//! ```

use selective_preemption::core::experiment::{ExperimentConfig, SchedulerKind};
use selective_preemption::trace::{MemorySink, Reason, TraceRecord};
use selective_preemption::workload::traces::SDSC;

fn main() {
    let sf = 2.0;
    let cfg = ExperimentConfig::new(SDSC, SchedulerKind::Ss { sf }).with_jobs(2_000);

    // MemorySink keeps the full record stream in memory; the run itself
    // is identical to `cfg.run()` apart from the instrumentation.
    let mut sink = MemorySink::new();
    let result = cfg.runner().trace_sink(&mut sink).run();

    println!(
        "{}: {} jobs under {}, {} preemptions\n",
        SDSC.name, result.report.overall.count, cfg.scheduler, result.sim.preemptions
    );
    println!(
        "{:>10}  {:>6} {:>10}  {:>6} {:>12}  {:>6}",
        "t (s)", "victim", "xf(victim)", "susp.", "xf(susp.)", "ratio"
    );
    for record in sink.records() {
        let TraceRecord::Decision {
            t,
            reason:
                Reason::PreemptedVictim {
                    victim,
                    suspender,
                    victim_xf,
                    suspender_xf,
                },
        } = record
        else {
            continue;
        };
        println!(
            "{t:>10}  {victim:>6} {victim_xf:>10.3}  {suspender:>6} {suspender_xf:>12.3}  {:>6.2}",
            suspender_xf / victim_xf
        );
        assert!(
            suspender_xf + 1e-9 >= sf * victim_xf,
            "suspension criterion violated at t={t}"
        );
    }
}
