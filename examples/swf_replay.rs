//! Replay a Standard Workload Format log through the simulator.
//!
//! The paper's experiments ran on the CTC/SDSC/KTH logs from Feitelson's
//! Parallel Workloads Archive. Those logs are not redistributable here,
//! but anyone holding one can reproduce the original experiments exactly:
//!
//! ```text
//! cargo run --release --example swf_replay -- path/to/CTC-SP2.swf 430
//! ```
//!
//! Without arguments, the example writes a synthetic trace to a
//! temporary SWF file and replays it, demonstrating the full round trip
//! (archive format → parser → simulator → per-category report).

use selective_preemption::core::experiment::SchedulerKind;
use selective_preemption::core::sim::Simulator;
use selective_preemption::metrics::table::render_comparison;
use selective_preemption::metrics::CategoryReport;
use selective_preemption::workload::traces::SDSC;
use selective_preemption::workload::{swf, SyntheticConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (text, procs, origin) = match args.as_slice() {
        [path, procs] => {
            let text = std::fs::read_to_string(path).expect("readable SWF file");
            let procs: u32 = procs.parse().expect("machine size in processors");
            (text, procs, path.clone())
        }
        [] => {
            // Self-contained demo: generate, serialize, re-parse.
            let jobs = SyntheticConfig::new(SDSC, 2024).with_jobs(1_500).generate();
            let text = swf::write(&jobs);
            let path = std::env::temp_dir().join("sps-demo.swf");
            std::fs::write(&path, &text).expect("writable temp dir");
            println!(
                "(no SWF supplied; wrote a synthetic demo log to {})\n",
                path.display()
            );
            (text, SDSC.procs, path.display().to_string())
        }
        _ => {
            eprintln!("usage: swf_replay [<log.swf> <machine_procs>]");
            std::process::exit(2);
        }
    };

    let trace = swf::parse(&text).expect("well-formed SWF");
    println!(
        "parsed {} usable jobs from {origin} ({} records skipped)",
        trace.jobs.len(),
        trace.skipped
    );
    // Drop jobs wider than the simulated machine (some archive logs
    // contain special partitions).
    let jobs: Vec<_> = trace
        .jobs
        .into_iter()
        .filter(|j| j.procs <= procs)
        .collect();
    println!("replaying {} jobs on {procs} processors\n", jobs.len());

    let mut grids = Vec::new();
    for kind in [SchedulerKind::Easy, SchedulerKind::Tss { sf: 2.0 }] {
        let res = Simulator::new(jobs.clone(), procs, kind.build()).run();
        let report = CategoryReport::from_outcomes(&res.outcomes);
        println!(
            "{:<12} overall slowdown {:>7.2}, utilization {:>5.1}%, preemptions {}",
            kind.label(),
            report.overall.mean_slowdown,
            res.utilization * 100.0,
            res.preemptions
        );
        grids.push((kind.label(), report.mean_slowdown_grid()));
    }
    let named: Vec<(&str, [f64; 16])> = grids.iter().map(|(n, g)| (n.as_str(), *g)).collect();
    println!(
        "\n{}",
        render_comparison("average slowdown per category", &named)
    );
}
